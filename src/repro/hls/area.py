"""FPGA area model — LUT/FF/DSP/BRAM estimates for a scheduled module.

The paper notes the reward can be redefined "as the negative of the area
and thus the RL agent will optimize for the area". This model supplies
that alternative objective (used by the area-objective example and the
multi-objective ablation bench).

Cost model, per functional unit actually instantiated:

* each opcode class has a LUT/FF/DSP unit cost;
* units are shared across states, so the count of a unit class is the
  *maximum per-state concurrency* the schedule exhibits, not the static
  instruction count — mirroring LegUp's binding stage;
* every value live across a state boundary costs FFs (a register);
* memories: every alloca/global costs BRAM bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.instructions import AllocaInst, Instruction
from ..ir.module import Module
from .delays import HLSConstraints, TimingLibrary
from .scheduler import ModuleSchedule, Scheduler

__all__ = ["AreaReport", "AreaEstimator", "UNIT_COSTS"]


@dataclass(frozen=True)
class UnitCost:
    luts: int
    ffs: int
    dsps: int = 0


# Cyclone-class per-unit costs (32-bit datapath).
UNIT_COSTS: Dict[str, UnitCost] = {
    "add": UnitCost(32, 0), "sub": UnitCost(32, 0),
    "mul": UnitCost(0, 64, dsps=3), "sdiv": UnitCost(1100, 96), "udiv": UnitCost(1050, 96),
    "srem": UnitCost(1100, 96), "urem": UnitCost(1050, 96),
    "and": UnitCost(32, 0), "or": UnitCost(32, 0), "xor": UnitCost(32, 0),
    "shl": UnitCost(96, 0), "lshr": UnitCost(96, 0), "ashr": UnitCost(96, 0),
    "icmp": UnitCost(32, 0), "fcmp": UnitCost(80, 32),
    "select": UnitCost(32, 0),
    "fadd": UnitCost(850, 400), "fsub": UnitCost(850, 400),
    "fmul": UnitCost(250, 220, dsps=7), "fdiv": UnitCost(3200, 1400),
    "fneg": UnitCost(1, 0),
    "gep": UnitCost(40, 0),
    "load": UnitCost(16, 32), "store": UnitCost(16, 0),
    "trunc": UnitCost(0, 0), "zext": UnitCost(0, 0), "sext": UnitCost(0, 0),
    "bitcast": UnitCost(0, 0), "sitofp": UnitCost(600, 300), "fptosi": UnitCost(600, 300),
    "phi": UnitCost(16, 0), "br": UnitCost(0, 0), "switch": UnitCost(48, 0),
    "ret": UnitCost(0, 0), "call": UnitCost(64, 32), "invoke": UnitCost(64, 32),
    "alloca": UnitCost(0, 0), "unreachable": UnitCost(0, 0),
}

_FF_PER_LIVE_VALUE = 32          # one 32-bit register per cross-state value
_LUT_PER_FSM_STATE = 4           # next-state logic
_BRAM_BITS_PER_SLOT = 32


@dataclass
class AreaReport:
    luts: int
    ffs: int
    dsps: int
    bram_bits: int

    @property
    def score(self) -> float:
        """Scalar area figure used as an RL objective (weighted sum)."""
        return self.luts + 0.5 * self.ffs + 100.0 * self.dsps + self.bram_bits / 64.0


class AreaEstimator:
    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 library: Optional[TimingLibrary] = None) -> None:
        self.scheduler = Scheduler(constraints, library)

    def estimate(self, module: Module, schedule: Optional[ModuleSchedule] = None) -> AreaReport:
        if schedule is None:
            schedule = self.scheduler.schedule_module(module)
        luts = ffs = dsps = 0
        bram_bits = sum(gv.value_type.size_slots * _BRAM_BITS_PER_SLOT
                        for gv in module.globals.values())

        for func, fsched in schedule.functions.items():
            for bb, bsched in fsched.blocks.items():
                luts += bsched.num_states * _LUT_PER_FSM_STATE
                # Unit binding: concurrency per opcode class per state.
                concurrency: Dict[tuple, int] = {}
                for op in bsched.ops.values():
                    inst = op.inst
                    if isinstance(inst, AllocaInst):
                        bram_bits += inst.allocated_type.size_slots * _BRAM_BITS_PER_SLOT
                        continue
                    key = (inst.opcode, op.start_state)
                    concurrency[key] = concurrency.get(key, 0) + 1
                peak: Dict[str, int] = {}
                for (opcode, _state), count in concurrency.items():
                    peak[opcode] = max(peak.get(opcode, 0), count)
                for opcode, units in peak.items():
                    cost = UNIT_COSTS.get(opcode, UnitCost(16, 16))
                    luts += cost.luts * units
                    ffs += cost.ffs * units
                    dsps += cost.dsps * units
                # Registers for values that cross state boundaries.
                for op in bsched.ops.values():
                    if op.inst.type.is_void:
                        continue
                    crosses = any(
                        user.parent is not bb or
                        bsched.ops.get(user, op).start_state > op.end_state
                        for user in op.inst.users()
                    )
                    if crosses or op.is_multicycle:
                        ffs += _FF_PER_LIVE_VALUE
        return AreaReport(luts=luts, ffs=ffs, dsps=dsps, bram_bits=bram_bits)
