"""Operation timing and resource library for the HLS scheduler.

Numbers follow the LegUp 4.0 characterization for a Cyclone-class FPGA at
the granularity the cycle model needs:

* *combinational* ops have a propagation delay in nanoseconds and may be
  chained within one FSM state as long as the accumulated delay fits the
  clock period (5 ns at the paper's 200 MHz constraint);
* *sequential* ops have a latency in cycles. Multiplies are pipelined
  (a new one can issue every state); dividers and the libm cores are not,
  so they occupy their unit for the full latency;
* memory ops go through dual-ported on-chip BRAM: at most two accesses
  per state, reads with 2-cycle latency, writes committing in 1 cycle.

The exact constants matter less than their *ordering* (div ≫ mul ≫ add >
logic) — that ordering is what makes pass choices change cycle counts the
same way they do in LegUp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["OpTiming", "TimingLibrary", "HLSConstraints", "DEFAULT_LIBRARY"]


@dataclass(frozen=True)
class OpTiming:
    """Timing/resource descriptor for one operation class."""

    delay_ns: float = 0.0          # combinational propagation delay
    latency_cycles: int = 0        # 0 => purely combinational
    pipelined: bool = True         # False => unit busy for all latency cycles
    resource: Optional[str] = None # named unit pool ('mem', 'div', 'mul', ...)

    @property
    def is_sequential(self) -> bool:
        return self.latency_cycles > 0


@dataclass
class HLSConstraints:
    """Target constraints: LegUp is driven by a frequency constraint; the
    scheduler will always produce states whose chained delay fits."""

    clock_period_ns: float = 5.0   # 200 MHz, the paper's setting
    memory_ports: int = 2          # dual-port BRAM
    dividers: int = 1
    multipliers: int = 4
    fpu_units: int = 1

    @property
    def frequency_mhz(self) -> float:
        return 1000.0 / self.clock_period_ns


class TimingLibrary:
    """opcode → OpTiming, with a table for external (libm/intrinsic) calls."""

    def __init__(self, ops: Dict[str, OpTiming], externals: Dict[str, OpTiming]) -> None:
        self.ops = ops
        self.externals = externals

    def for_opcode(self, opcode: str) -> OpTiming:
        timing = self.ops.get(opcode)
        if timing is None:
            raise KeyError(f"no timing entry for opcode {opcode}")
        return timing

    def for_external(self, name: str) -> OpTiming:
        return self.externals.get(name, OpTiming(latency_cycles=4, pipelined=False, resource="call"))


_OPS: Dict[str, OpTiming] = {
    # integer arithmetic (32-bit ripple/carry-select adders, etc.)
    "add": OpTiming(delay_ns=2.5),
    "sub": OpTiming(delay_ns=2.5),
    "mul": OpTiming(latency_cycles=2, pipelined=True, resource="mul"),
    "sdiv": OpTiming(latency_cycles=16, pipelined=False, resource="div"),
    "udiv": OpTiming(latency_cycles=16, pipelined=False, resource="div"),
    "srem": OpTiming(latency_cycles=16, pipelined=False, resource="div"),
    "urem": OpTiming(latency_cycles=16, pipelined=False, resource="div"),
    # bitwise logic and shifts are cheap combinational fabric
    "and": OpTiming(delay_ns=0.9),
    "or": OpTiming(delay_ns=0.9),
    "xor": OpTiming(delay_ns=0.9),
    "shl": OpTiming(delay_ns=1.6),
    "lshr": OpTiming(delay_ns=1.6),
    "ashr": OpTiming(delay_ns=1.6),
    # floating point (pipelined cores)
    "fadd": OpTiming(latency_cycles=4, pipelined=True, resource="fpu"),
    "fsub": OpTiming(latency_cycles=4, pipelined=True, resource="fpu"),
    "fmul": OpTiming(latency_cycles=5, pipelined=True, resource="fpu"),
    "fdiv": OpTiming(latency_cycles=16, pipelined=False, resource="fpu"),
    "fneg": OpTiming(delay_ns=0.5),
    "fcmp": OpTiming(latency_cycles=1, pipelined=True, resource="fpu"),
    # comparisons / select: combinational
    "icmp": OpTiming(delay_ns=2.0),
    "select": OpTiming(delay_ns=1.2),
    # memory: dual-port BRAM, synchronous read
    "load": OpTiming(latency_cycles=2, pipelined=True, resource="mem"),
    "store": OpTiming(latency_cycles=1, pipelined=True, resource="mem"),
    "alloca": OpTiming(delay_ns=0.0),  # static elaboration, no runtime cost
    "gep": OpTiming(delay_ns=1.8),     # address arithmetic
    # casts are wiring (sext/zext/trunc/bitcast); int<->float uses the FPU
    "trunc": OpTiming(delay_ns=0.0),
    "zext": OpTiming(delay_ns=0.0),
    "sext": OpTiming(delay_ns=0.0),
    "bitcast": OpTiming(delay_ns=0.0),
    "sitofp": OpTiming(latency_cycles=4, pipelined=True, resource="fpu"),
    "fptosi": OpTiming(latency_cycles=4, pipelined=True, resource="fpu"),
    # control
    "phi": OpTiming(delay_ns=0.3),     # input mux on state entry
    "br": OpTiming(delay_ns=0.0),
    "switch": OpTiming(delay_ns=1.0),  # case comparator tree
    "ret": OpTiming(delay_ns=0.0),
    "unreachable": OpTiming(delay_ns=0.0),
    # calls to defined functions: one handshake state in the caller FSM;
    # the callee's own FSM states are counted by the profiler trace.
    "call": OpTiming(latency_cycles=1, pipelined=False, resource="call"),
    "invoke": OpTiming(latency_cycles=1, pipelined=False, resource="call"),
}

_EXTERNALS: Dict[str, OpTiming] = {
    "sqrt": OpTiming(latency_cycles=28, pipelined=False, resource="call"),
    "fabs": OpTiming(latency_cycles=1, pipelined=True),
    "sin": OpTiming(latency_cycles=40, pipelined=False, resource="call"),
    "cos": OpTiming(latency_cycles=40, pipelined=False, resource="call"),
    "exp": OpTiming(latency_cycles=32, pipelined=False, resource="call"),
    "log": OpTiming(latency_cycles=32, pipelined=False, resource="call"),
    "abs": OpTiming(latency_cycles=1, pipelined=True),
    "min": OpTiming(latency_cycles=1, pipelined=True),
    "max": OpTiming(latency_cycles=1, pipelined=True),
    "llvm.expect.i32": OpTiming(delay_ns=0.0),
    "llvm.expect.i1": OpTiming(delay_ns=0.0),
    # Burst memory engines: latency grows with transfer size; the
    # scheduler uses the fixed setup latency and the profiler adds the
    # per-element burst cost (see profiler.EXTERNAL_DYNAMIC_COST).
    "llvm.memset": OpTiming(latency_cycles=2, pipelined=False, resource="mem"),
    "llvm.memcpy": OpTiming(latency_cycles=2, pipelined=False, resource="mem"),
    "putchar": OpTiming(latency_cycles=1, pipelined=False, resource="call"),
}

DEFAULT_LIBRARY = TimingLibrary(_OPS, _EXTERNALS)
