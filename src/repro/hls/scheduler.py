"""Per-basic-block list scheduler with operation chaining.

Implements the scheduling model LegUp's cycle estimate is built on
(Canis et al. 2013; Huang et al. 2013):

* each basic block becomes a run of FSM *states*;
* combinational operations chain within a state while the accumulated
  combinational delay fits the clock period;
* sequential operations (multiplies, divides, memory, FP, calls) start at
  a state boundary and finish ``latency`` states later;
* per-state resource limits (memory ports, divider, multipliers, FPU)
  defer operations that over-subscribe a unit;
* data dependences *within* the block are honoured exactly; values
  produced in other blocks are available when the state machine enters
  the block (they live in registers).

Memory ordering: two accesses that may alias must not be scheduled such
that a later write overtakes an earlier access. Program order is enforced
between may-aliasing pairs using :mod:`repro.analysis.alias`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.alias import AliasResult, alias
from ..ir.instructions import (
    CallInst,
    Instruction,
    InvokeInst,
    LoadInst,
    PhiNode,
    StoreInst,
)
from ..ir.module import BasicBlock, Function, Module
from .delays import DEFAULT_LIBRARY, HLSConstraints, OpTiming, TimingLibrary

__all__ = ["ScheduledOp", "BlockSchedule", "FunctionSchedule", "ModuleSchedule", "Scheduler"]


@dataclass
class ScheduledOp:
    """Placement of one instruction in its block's FSM."""

    inst: Instruction
    start_state: int
    end_state: int          # state in which the result becomes available
    start_time_ns: float    # chaining position within the start state
    end_time_ns: float

    @property
    def is_multicycle(self) -> bool:
        return self.end_state > self.start_state


@dataclass
class BlockSchedule:
    block: BasicBlock
    ops: Dict[Instruction, ScheduledOp]
    num_states: int

    def state_of(self, inst: Instruction) -> ScheduledOp:
        return self.ops[inst]

    def ops_in_state(self, state: int) -> List[ScheduledOp]:
        return [op for op in self.ops.values() if op.start_state == state]


@dataclass
class FunctionSchedule:
    function: Function
    blocks: Dict[BasicBlock, BlockSchedule]

    def num_states(self, bb: BasicBlock) -> int:
        return self.blocks[bb].num_states

    def total_states(self) -> int:
        return sum(bs.num_states for bs in self.blocks.values())


@dataclass
class ModuleSchedule:
    module: Module
    functions: Dict[Function, FunctionSchedule]

    def for_function(self, func: Function) -> FunctionSchedule:
        return self.functions[func]

    def states_of_block(self, bb: BasicBlock) -> int:
        assert bb.parent is not None
        return self.functions[bb.parent].num_states(bb)


class Scheduler:
    """Schedules every defined function of a module."""

    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 library: Optional[TimingLibrary] = None) -> None:
        self.constraints = constraints or HLSConstraints()
        self.library = library or DEFAULT_LIBRARY

    # -- public API ---------------------------------------------------------
    def schedule_module(self, module: Module) -> ModuleSchedule:
        return ModuleSchedule(
            module,
            {f: self.schedule_function(f) for f in module.defined_functions()},
        )

    def schedule_function(self, func: Function) -> FunctionSchedule:
        return FunctionSchedule(func, {bb: self.schedule_block(bb) for bb in func.blocks})

    def function_state_counts(self, func: Function) -> List[int]:
        """Per-block FSM state counts in block order — the only piece of a
        schedule the cycle profiler consumes, and the unit the profiler's
        structural-hash cache stores (block identity is positional, so the
        counts transfer across clones of the same function)."""
        fsched = self.schedule_function(func)
        return [fsched.blocks[bb].num_states for bb in func.blocks]

    # -- core algorithm --------------------------------------------------------
    def schedule_block(self, block: BasicBlock) -> BlockSchedule:
        period = self.constraints.clock_period_ns
        limits = {
            "mem": self.constraints.memory_ports,
            "div": self.constraints.dividers,
            "mul": self.constraints.multipliers,
            "fpu": self.constraints.fpu_units,
            "call": 1,
        }
        # usage[(state, resource)] -> count of issue slots taken
        usage: Dict[Tuple[int, str], int] = {}
        # busy[(state, resource)] -> non-pipelined unit held this state
        busy: Dict[Tuple[int, str], int] = {}
        ops: Dict[Instruction, ScheduledOp] = {}
        # Memory-order chain: last scheduled access per alias class.
        mem_accesses: List[Tuple[Instruction, ScheduledOp]] = []

        def timing_for(inst: Instruction) -> OpTiming:
            if isinstance(inst, (CallInst, InvokeInst)):
                if isinstance(inst, CallInst) and (inst.is_external or inst.callee.is_declaration):
                    return self.library.for_external(inst.callee_name)
                return self.library.for_opcode("call")
            return self.library.for_opcode(inst.opcode)

        def operand_ready(inst: Instruction) -> Tuple[int, float]:
            # Only same-block defs constrain placement; everything else is
            # already in a register when the FSM enters the block.
            state, time = 0, 0.0
            for op in inst.operands:
                placed = ops.get(op)
                if placed is None:
                    continue
                if placed.end_state > state:
                    state, time = placed.end_state, placed.end_time_ns
                elif placed.end_state == state:
                    time = max(time, placed.end_time_ns)
            return state, time

        def memory_order_floor(inst: Instruction) -> int:
            """Earliest state allowed by memory-dependence edges."""
            floor = 0
            if not (isinstance(inst, (LoadInst, StoreInst)) or
                    (isinstance(inst, (CallInst, InvokeInst)) and
                     (inst.may_read_memory() or inst.may_write_memory()))):
                return floor
            for prev, placed in mem_accesses:
                if not _memory_conflict(prev, inst):
                    continue
                # A conflicting later access may start once the earlier one
                # has committed (its end state).
                floor = max(floor, placed.end_state)
            return floor

        def find_issue_state(earliest: int, timing: OpTiming) -> int:
            state = earliest
            if timing.resource is None:
                return state
            limit = limits.get(timing.resource, 1)
            for _ in range(100_000):
                ok = usage.get((state, timing.resource), 0) < limit and busy.get((state, timing.resource), 0) < limit
                if ok and not timing.pipelined:
                    span = range(state, state + max(1, timing.latency_cycles))
                    ok = all(
                        usage.get((s, timing.resource), 0) < limit and busy.get((s, timing.resource), 0) < limit
                        for s in span
                    )
                if ok:
                    return state
                state += 1
            raise RuntimeError("scheduler failed to find an issue slot")

        last_state = 0
        for inst in block.instructions:
            timing = timing_for(inst)
            ready_state, ready_time = operand_ready(inst)
            ready_state = max(ready_state, memory_order_floor(inst))

            if timing.is_sequential:
                # Sequential units register their inputs: start at the
                # operand-ready state (inputs arrive by the state boundary
                # if they were produced combinationally earlier in it).
                start = find_issue_state(ready_state if ready_time == 0.0 else ready_state + 1, timing)
                end = start + timing.latency_cycles
                placed = ScheduledOp(inst, start, end, 0.0, 0.0)
                usage[(start, timing.resource)] = usage.get((start, timing.resource), 0) + 1
                if not timing.pipelined and timing.resource is not None:
                    for s in range(start, end):
                        busy[(s, timing.resource)] = busy.get((s, timing.resource), 0) + 1
            else:
                # Combinational: chain if the delay still fits this state.
                start, t0 = ready_state, ready_time
                if t0 + timing.delay_ns > period and t0 > 0.0:
                    start, t0 = start + 1, 0.0
                placed = ScheduledOp(inst, start, start, t0, t0 + timing.delay_ns)

            ops[inst] = placed
            if isinstance(inst, (LoadInst, StoreInst)) or (
                isinstance(inst, (CallInst, InvokeInst)) and (inst.may_read_memory() or inst.may_write_memory())
            ):
                mem_accesses.append((inst, placed))
            last_state = max(last_state, placed.end_state if timing.is_sequential else placed.start_state)

        # The block occupies states 0..last_state; control transfers at the
        # end of the final state, so the cycle cost is last_state + 1.
        num_states = last_state + 1 if block.instructions else 1
        return BlockSchedule(block, ops, num_states)


def _memory_conflict(a: Instruction, b: Instruction) -> bool:
    """Must program order between two memory operations be preserved?"""
    a_writes = a.may_write_memory()
    b_writes = b.may_write_memory()
    if not a_writes and not b_writes:
        return False  # two reads commute
    # Calls conflict with everything that touches memory.
    if isinstance(a, (CallInst, InvokeInst)) or isinstance(b, (CallInst, InvokeInst)):
        return True
    pa = a.pointer if isinstance(a, (LoadInst, StoreInst)) else None
    pb = b.pointer if isinstance(b, (LoadInst, StoreInst)) else None
    if pa is None or pb is None:
        return True
    if getattr(a, "is_volatile", False) or getattr(b, "is_volatile", False):
        return True
    return alias(pa, pb) is not AliasResult.NO_ALIAS
