"""Structural hashing of function bodies for incremental scheduling.

The scheduler's output for a function depends only on (a) the function's
instruction stream — opcodes, result/operand types, predicates,
volatility, GEP index structure — (b) the *intra-function* def-use
topology (which operands are same-block defs and in what order, which
drives chaining and resource contention), (c) memory provenance (alias
queries walk GEP chains back to allocas/globals/arguments and, for
globals, whether their address escapes anywhere in the module), and
(d) callee facts (external callee names select timing-library entries;
callee ``readonly``/``readnone`` attributes gate memory-dependence
edges).

:func:`structural_key` encodes exactly that closure into a hashable
tuple, deliberately ignoring value *names* so that clones of the same
function (``clone_module`` renames every instruction) and structurally
identical functions across pass applications produce the same key. Two
functions with equal keys have isomorphic bodies under the encoding and
therefore identical block schedules, which is what makes the profiler's
per-function schedule cache sound.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.alias import _escapes
from ..ir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    FCmpInst,
    ICmpInst,
    InvokeInst,
    LoadInst,
    PhiNode,
    StoreInst,
    SwitchInst,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
    Value,
)

__all__ = ["structural_key"]


def _encode_callee(callee, escapes_memo: Dict) -> Tuple:
    if isinstance(callee, str):
        return ("x", callee)
    # Callee attributes decide may_read/may_write for the memory-ordering
    # edges; declarations are timed by name through the external library.
    return ("f", callee.name, callee.is_declaration,
            tuple(sorted(callee.attributes)))


def structural_key(func: Function,
                   escapes_memo: Optional[Dict[Value, bool]] = None) -> Tuple:
    """A hashable, name-independent key capturing the schedule inputs.

    ``escapes_memo`` memoizes the module-wide "does this global's address
    escape" query across the functions of one module traversal.
    """
    if escapes_memo is None:
        escapes_memo = {}
    ids: Dict[Value, int] = {}
    for i, bb in enumerate(func.blocks):
        ids[bb] = i
    n = 0
    for bb in func.blocks:
        for inst in bb.instructions:
            ids[inst] = n
            n += 1

    def enc(v: Value) -> Tuple:
        local = ids.get(v)
        if local is not None:
            kind = "b" if isinstance(v, BasicBlock) else "i"
            return (kind, local)
        if isinstance(v, ConstantInt):
            return ("ci", v.value, str(v.type))
        if isinstance(v, ConstantFloat):
            return ("cf", repr(v.value))
        if isinstance(v, UndefValue):
            return ("u", str(v.type))
        if isinstance(v, GlobalVariable):
            escapes = escapes_memo.get(v)
            if escapes is None:
                escapes = escapes_memo.setdefault(v, _escapes(v))
            return ("g", v.name, v.is_constant, str(v.value_type), escapes)
        if isinstance(v, Argument):
            return ("a", v.index)
        if isinstance(v, Function):
            return _encode_callee(v, escapes_memo)
        return ("?", str(v.type))  # conservative: distinct per stringification

    blocks = []
    for bb in func.blocks:
        insts = []
        for inst in bb.instructions:
            extra: Tuple = ()
            if isinstance(inst, (ICmpInst, FCmpInst)):
                extra = (inst.predicate,)
            elif isinstance(inst, (LoadInst, StoreInst)):
                extra = (inst.is_volatile,)
            elif isinstance(inst, AllocaInst):
                extra = (str(inst.allocated_type), inst.allocated_type.size_slots)
            elif isinstance(inst, InvokeInst):
                extra = (_encode_callee(inst.callee, escapes_memo),
                         enc(inst.normal_dest), enc(inst.unwind_dest))
            elif isinstance(inst, CallInst):
                extra = (_encode_callee(inst.callee, escapes_memo),)
            elif isinstance(inst, PhiNode):
                extra = tuple(enc(b) for b in inst.incoming_blocks)
            elif isinstance(inst, SwitchInst):
                extra = tuple((c.value, enc(b)) for c, b in inst.cases) + (enc(inst.default),)
            elif isinstance(inst, BranchInst):
                extra = tuple(enc(t) for t in inst.successors())
            insts.append((inst.opcode, str(inst.type), extra,
                          tuple(enc(op) for op in inst.operands)))
        blocks.append(tuple(insts))
    return (str(func.ftype), tuple(str(a.type) for a in func.args), tuple(blocks))
