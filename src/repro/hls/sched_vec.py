"""Batched FSM scheduling — the scheduler's fast path.

The reference :class:`~repro.hls.scheduler.Scheduler` re-derives
everything per instruction while scheduling: operation timing through
isinstance chains, memory-dependence edges through pairwise
:func:`repro.analysis.alias.alias` queries that re-walk GEP chains for
every (earlier, later) access pair, and a :class:`ScheduledOp` dataclass
per placement. On a cold schedule of a memory-heavy block the pairwise
alias walks are quadratic in chain-walk work.

This module computes the exact same per-block FSM state counts (the only
piece of a schedule :class:`~repro.hls.profiler.CycleProfiler` consumes)
through one flat pass per module:

* **timing interning** — each opcode/external resolves once per timing
  library to a plain tuple ``(is_seq, latency, pipelined, resource,
  delay)``;
* **pointer provenance** — each pointer operand is walked once,
  memoized, to ``(base, const_offset, offsets_all_constant)`` with the
  reference's 64-hop limits; the pairwise conflict test then reduces to
  tuple comparisons, with :func:`escapes` results memoized per base
  (the reference recomputes the use-graph walk per query);
* **flat placements** — per-instruction end states live in a plain
  dict of tuples instead of dataclass instances, and no
  ``BlockSchedule``/``FunctionSchedule`` objects are materialized.

Bit-identity contract: :func:`function_state_counts_flat` equals
``Scheduler.function_state_counts`` element-for-element for every
function (pinned by tests and by ``REPRO_SIM_KERNELS=verify``).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..analysis.alias import _escapes
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    GEPInst,
    InvokeInst,
    LoadInst,
    StoreInst,
)
from ..ir.module import Function
from ..ir.values import Argument, ConstantInt, GlobalVariable, Value
from .delays import DEFAULT_LIBRARY, HLSConstraints, TimingLibrary

__all__ = ["function_state_counts_flat"]

# library -> (opcode -> spec, external name -> spec); spec is the interned
# flat form (is_seq, latency_cycles, pipelined, resource, delay_ns)
_spec_cache: "weakref.WeakKeyDictionary[TimingLibrary, Tuple[Dict, Dict]]" = (
    weakref.WeakKeyDictionary())


def _specs_for(library: TimingLibrary) -> Tuple[Dict, Dict]:
    entry = _spec_cache.get(library)
    if entry is None:
        entry = ({}, {})
        _spec_cache[library] = entry
    return entry


def _intern(timing) -> Tuple:
    return (timing.latency_cycles > 0, timing.latency_cycles,
            timing.pipelined, timing.resource, timing.delay_ns)


def _provenance(ptr: Value, memo: Dict) -> Tuple:
    """``(base, const_offset, all_constant)`` with the reference limits.

    Mirrors ``underlying_object`` (≤64 GEP hops) and ``constant_offset``
    (≤64 hops, None on any non-constant index) in a single walk. When an
    index is non-constant the walk still continues to the base — the
    reference's ``underlying_object`` does — but ``all_constant`` goes
    False, which is all ``alias()`` observes of ``constant_offset``'s
    None.
    """
    got = memo.get(ptr)
    if got is not None:
        return got
    base = ptr
    offset = 0
    all_const = True
    depth = 0
    while isinstance(base, GEPInst) and depth < 64:
        if all_const:
            for idx, stride in zip(base.indices, base.element_strides()):
                if isinstance(idx, ConstantInt):
                    offset += idx.value * stride
                else:
                    all_const = False
                    break
        base = base.pointer
        depth += 1
    got = (base, offset, all_const)
    memo[ptr] = got
    return got


def _escapes_cached(base: Value, memo: Dict) -> bool:
    got = memo.get(base)
    if got is None:
        got = memo[base] = _escapes(base)
    return got


def function_state_counts_flat(func: Function,
                               constraints: Optional[HLSConstraints] = None,
                               library: Optional[TimingLibrary] = None,
                               prov_memo: Optional[Dict] = None,
                               escapes_memo: Optional[Dict] = None) -> List[int]:
    """Per-block FSM state counts in block order — the batched equivalent
    of ``Scheduler.function_state_counts``, bit-identical by contract."""
    constraints = constraints or HLSConstraints()
    library = library or DEFAULT_LIBRARY
    op_specs, ext_specs = _specs_for(library)
    if prov_memo is None:
        prov_memo = {}
    if escapes_memo is None:
        escapes_memo = {}

    period = constraints.clock_period_ns
    limits = {
        "mem": constraints.memory_ports,
        "div": constraints.dividers,
        "mul": constraints.multipliers,
        "fpu": constraints.fpu_units,
        "call": 1,
    }

    counts: List[int] = []
    for bb in func.blocks:
        instructions = bb.instructions
        if not instructions:
            counts.append(1)
            continue
        usage: Dict[Tuple[int, str], int] = {}
        busy: Dict[Tuple[int, str], int] = {}
        # inst -> (end_state, end_time_ns); same role as the reference's
        # ScheduledOp placements, reduced to what downstream reads.
        placed: Dict = {}
        # (is_call, writes, ptr_info, end_state) per prior memory access
        mem_prev: List[Tuple] = []
        last_state = 0

        for inst in instructions:
            # timing (interned per library)
            if isinstance(inst, (CallInst, InvokeInst)):
                if isinstance(inst, CallInst) and (
                        inst.is_external or inst.callee.is_declaration):
                    name = inst.callee_name
                    spec = ext_specs.get(name)
                    if spec is None:
                        spec = ext_specs[name] = _intern(library.for_external(name))
                else:
                    spec = op_specs.get("call")
                    if spec is None:
                        spec = op_specs["call"] = _intern(library.for_opcode("call"))
            else:
                opcode = inst.opcode
                spec = op_specs.get(opcode)
                if spec is None:
                    spec = op_specs[opcode] = _intern(library.for_opcode(opcode))
            is_seq, latency, pipelined, resource, delay = spec

            # operand readiness (same-block defs only)
            ready_state, ready_time = 0, 0.0
            for op in inst.operands:
                p = placed.get(op)
                if p is None:
                    continue
                es, et = p
                if es > ready_state:
                    ready_state, ready_time = es, et
                elif es == ready_state and et > ready_time:
                    ready_time = et
            # memory-order floor
            mem_spec = None
            if isinstance(inst, (LoadInst, StoreInst)):
                writes = isinstance(inst, StoreInst)
                ptr = inst.pointer
                base, off, all_const = _provenance(ptr, prov_memo)
                mem_spec = (False, writes,
                            (ptr, inst.is_volatile, base, off, all_const))
            elif isinstance(inst, (CallInst, InvokeInst)) and (
                    inst.may_read_memory() or inst.may_write_memory()):
                mem_spec = (True, inst.may_write_memory(), None)
            if mem_spec is not None:
                for prev in mem_prev:
                    if prev[3] > ready_state and _conflicts(
                            prev, mem_spec, escapes_memo):
                        ready_state = prev[3]

            if is_seq:
                state = ready_state if ready_time == 0.0 else ready_state + 1
                if resource is None:
                    start = state
                else:
                    limit = limits.get(resource, 1)
                    for _ in range(100_000):
                        ok = (usage.get((state, resource), 0) < limit and
                              busy.get((state, resource), 0) < limit)
                        if ok and not pipelined:
                            for s in range(state + 1, state + max(1, latency)):
                                if not (usage.get((s, resource), 0) < limit and
                                        busy.get((s, resource), 0) < limit):
                                    ok = False
                                    break
                        if ok:
                            break
                        state += 1
                    else:
                        raise RuntimeError("scheduler failed to find an issue slot")
                    start = state
                end = start + latency
                placed[inst] = (end, 0.0)
                key = (start, resource)
                usage[key] = usage.get(key, 0) + 1
                if not pipelined and resource is not None:
                    for s in range(start, end):
                        key = (s, resource)
                        busy[key] = busy.get(key, 0) + 1
                if end > last_state:
                    last_state = end
            else:
                start, t0 = ready_state, ready_time
                if t0 > 0.0 and t0 + delay > period:
                    start, t0 = start + 1, 0.0
                placed[inst] = (start, t0 + delay)
                if start > last_state:
                    last_state = start
            if mem_spec is not None:
                mem_prev.append(mem_spec + (placed[inst][0] if is_seq
                                            else start,))

        counts.append(last_state + 1)
    return counts


def _conflicts(prev: Tuple, cur: Tuple, escapes_memo: Dict) -> bool:
    """Exactly ``_memory_conflict(prev, cur)`` over precomputed specs."""
    a_call, a_writes, a_info, _ = prev
    b_call, b_writes, b_info = cur
    if not a_writes and not b_writes:
        return False  # two reads commute
    if a_call or b_call:
        return True  # calls conflict with everything that touches memory
    pa, a_vol, a_base, a_off, a_const = a_info
    pb, b_vol, b_base, b_off, b_const = b_info
    if a_vol or b_vol:
        return True
    # alias(pa, pb) is not NO_ALIAS, over the precomputed provenance
    if pa is pb:
        return True  # MUST_ALIAS
    if a_base is not b_base:
        a_id = isinstance(a_base, (AllocaInst, GlobalVariable))
        b_id = isinstance(b_base, (AllocaInst, GlobalVariable))
        if a_id and b_id:
            return False  # distinct identified objects never alias
        if a_id and isinstance(b_base, Argument) and not _escapes_cached(
                a_base, escapes_memo):
            return False
        if b_id and isinstance(a_base, Argument) and not _escapes_cached(
                b_base, escapes_memo):
            return False
        return True  # MAY_ALIAS
    if a_const and b_const:
        return a_off == b_off  # MUST when equal, NO when distinct
    return True  # MAY_ALIAS
