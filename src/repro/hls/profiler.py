"""Clock-cycle profiler — the fast LegUp-style cycle estimate.

Huang et al. 2013 observed that under a fixed frequency constraint the
cycle count of the synthesized circuit equals the sum over basic blocks of
(software-trace visit count × scheduled FSM states), because each block's
schedule is static. This module reproduces exactly that computation:

    cycles = Σ_bb  visits(bb) × states(bb)   (+ dynamic burst costs)

The interpreter supplies the visit counts; the scheduler supplies the
states. ``llvm.memset``/``llvm.memcpy`` transfer a dynamic number of
elements, so their per-element burst cost is added from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..interp.interpreter import ExecutionResult, Interpreter
from ..interp.state import InterpreterLimitExceeded, TrapError
from ..ir.instructions import CallInst
from ..ir.module import Module
from .delays import HLSConstraints, TimingLibrary
from .scheduler import ModuleSchedule, Scheduler

__all__ = ["CycleReport", "HLSCompilationError", "CycleProfiler"]

# Burst engines move one slot per cycle after setup (see delays.py).
_DYNAMIC_BURST = ("llvm.memset", "llvm.memcpy")


class HLSCompilationError(Exception):
    """The program cannot be synthesized/profiled (the paper's HLS filter)."""


@dataclass
class CycleReport:
    """The profiler's verdict for one program execution."""

    cycles: int
    states_by_block: Dict[str, int]
    visits_by_block: Dict[str, int]
    execution: ExecutionResult
    frequency_mhz: float

    @property
    def wall_time_us(self) -> float:
        return self.cycles / self.frequency_mhz


class CycleProfiler:
    """Schedule a module, execute it, and combine both into a cycle count."""

    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 library: Optional[TimingLibrary] = None,
                 max_steps: int = 1_000_000) -> None:
        self.scheduler = Scheduler(constraints, library)
        self.constraints = self.scheduler.constraints
        self.max_steps = max_steps

    def profile(self, module: Module, entry: str = "main") -> CycleReport:
        try:
            schedule = self.scheduler.schedule_module(module)
        except Exception as exc:  # scheduling failure = HLS failure
            raise HLSCompilationError(f"scheduling failed: {exc}") from exc
        try:
            execution = Interpreter(module, max_steps=self.max_steps).run(entry)
        except (TrapError, InterpreterLimitExceeded) as exc:
            raise HLSCompilationError(f"execution failed: {exc}") from exc
        return self._combine(module, schedule, execution)

    def _combine(self, module: Module, schedule: ModuleSchedule,
                 execution: ExecutionResult) -> CycleReport:
        cycles = 0
        states_by_block: Dict[str, int] = {}
        visits_by_block: Dict[str, int] = {}
        for func, fsched in schedule.functions.items():
            for bb, bsched in fsched.blocks.items():
                visits = execution.block_counts.get(bb, 0)
                states_by_block[f"{func.name}:{bb.name}"] = bsched.num_states
                visits_by_block[f"{func.name}:{bb.name}"] = visits
                cycles += visits * bsched.num_states

        # Dynamic burst costs: one extra cycle per transferred slot beyond
        # the scheduled setup latency, recovered from the dynamic trace.
        for name in _DYNAMIC_BURST:
            count = execution.call_counts.get(name, 0)
            if count:
                avg_burst = _estimate_burst_slots(module, name)
                cycles += count * avg_burst

        return CycleReport(
            cycles=cycles,
            states_by_block=states_by_block,
            visits_by_block=visits_by_block,
            execution=execution,
            frequency_mhz=self.constraints.frequency_mhz,
        )


def _estimate_burst_slots(module: Module, intrinsic: str) -> int:
    """Static mean of constant burst lengths at call sites of ``intrinsic``."""
    from ..ir.values import ConstantInt

    lengths: List[int] = []
    for inst in module.instructions():
        if isinstance(inst, CallInst) and inst.callee_name == intrinsic:
            count_arg = inst.args[-1]
            if isinstance(count_arg, ConstantInt):
                lengths.append(max(0, count_arg.value))
            else:
                lengths.append(16)  # unknown dynamic length: assume a line
    if not lengths:
        return 0
    return int(round(sum(lengths) / len(lengths)))
