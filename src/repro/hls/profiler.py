"""Clock-cycle profiler — the fast LegUp-style cycle estimate.

Huang et al. 2013 observed that under a fixed frequency constraint the
cycle count of the synthesized circuit equals the sum over basic blocks of
(software-trace visit count × scheduled FSM states), because each block's
schedule is static. This module reproduces exactly that computation:

    cycles = Σ_bb  visits(bb) × states(bb)   (+ dynamic burst costs)

The interpreter supplies the visit counts; the scheduler supplies the
states. ``llvm.memset``/``llvm.memcpy`` transfer a dynamic number of
elements, so their per-element burst cost is added from the trace.

Two memoization layers make repeated profiling cheap:

* **Incremental scheduling** — per-function FSM state counts are cached
  under a structural hash of the function body (:mod:`.hashing`), so a
  pass that mutates one function only forces that function to be
  rescheduled; everything else (and every clone of it) hits the cache.
* **Burst-slot memo** — the static mean burst length of
  ``llvm.memset``/``llvm.memcpy`` call sites is cached per
  ``(module, Module.version)``, so back-to-back profiles of an
  unmutated module stop rescanning every instruction.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..interp.interpreter import ExecutionResult, Interpreter
from ..interp.state import InterpreterLimitExceeded, TrapError
from ..ir.instructions import CallInst
from ..ir.module import BasicBlock, Module
from .delays import HLSConstraints, TimingLibrary
from .hashing import structural_key
from .scheduler import Scheduler

__all__ = ["CycleReport", "HLSCompilationError", "CycleProfiler"]

# Burst engines move one slot per cycle after setup (see delays.py).
_DYNAMIC_BURST = ("llvm.memset", "llvm.memcpy")


class HLSCompilationError(Exception):
    """The program cannot be synthesized/profiled (the paper's HLS filter)."""


@dataclass
class CycleReport:
    """The profiler's verdict for one program execution."""

    cycles: int
    states_by_block: Dict[str, int]
    visits_by_block: Dict[str, int]
    execution: ExecutionResult
    frequency_mhz: float

    @property
    def wall_time_us(self) -> float:
        return self.cycles / self.frequency_mhz


class CycleProfiler:
    """Schedule a module, execute it, and combine both into a cycle count."""

    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 library: Optional[TimingLibrary] = None,
                 max_steps: int = 1_000_000,
                 schedule_cache_size: int = 512) -> None:
        self.scheduler = Scheduler(constraints, library)
        self.constraints = self.scheduler.constraints
        self.max_steps = max_steps
        # structural key -> per-block state counts (block order positional)
        self._schedule_cache: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        self._schedule_cache_size = schedule_cache_size
        self.schedule_cache_hits = 0
        self.schedule_cache_misses = 0
        # module -> (Module.version, {intrinsic: mean burst slots})
        self._burst_cache: "weakref.WeakKeyDictionary[Module, Tuple[int, Dict[str, int]]]" = (
            weakref.WeakKeyDictionary())
        self._lock = threading.Lock()

    def profile(self, module: Module, entry: str = "main") -> CycleReport:
        try:
            block_states = self._module_block_states(module)
        except Exception as exc:  # scheduling failure = HLS failure
            raise HLSCompilationError(f"scheduling failed: {exc}") from exc
        try:
            execution = Interpreter(module, max_steps=self.max_steps).run(entry)
        except (TrapError, InterpreterLimitExceeded) as exc:
            raise HLSCompilationError(f"execution failed: {exc}") from exc
        return self._combine(module, block_states, execution)

    # -- incremental scheduling ---------------------------------------------
    def _module_block_states(self, module: Module) -> Dict[BasicBlock, int]:
        """FSM state count per block, rescheduling only functions whose
        structural hash is not already cached."""
        states: Dict[BasicBlock, int] = {}
        escapes_memo: Dict = {}
        for func in module.defined_functions():
            if self._schedule_cache_size <= 0:
                counts = self.scheduler.function_state_counts(func)
            else:
                key = structural_key(func, escapes_memo)
                with self._lock:
                    counts = self._schedule_cache.get(key)
                    if counts is not None:
                        self._schedule_cache.move_to_end(key)
                        self.schedule_cache_hits += 1
                if counts is None:
                    counts = self.scheduler.function_state_counts(func)
                    with self._lock:
                        self.schedule_cache_misses += 1
                        self._schedule_cache[key] = counts
                        while len(self._schedule_cache) > self._schedule_cache_size:
                            self._schedule_cache.popitem(last=False)
            for bb, n in zip(func.blocks, counts):
                states[bb] = n
        return states

    def _combine(self, module: Module, block_states: Dict[BasicBlock, int],
                 execution: ExecutionResult) -> CycleReport:
        cycles = 0
        states_by_block: Dict[str, int] = {}
        visits_by_block: Dict[str, int] = {}
        for bb, num_states in block_states.items():
            visits = execution.block_counts.get(bb, 0)
            label = f"{bb.parent.name}:{bb.name}" if bb.parent is not None else bb.name
            states_by_block[label] = num_states
            visits_by_block[label] = visits
            cycles += visits * num_states

        # Dynamic burst costs: one extra cycle per transferred slot beyond
        # the scheduled setup latency, recovered from the dynamic trace.
        for name in _DYNAMIC_BURST:
            count = execution.call_counts.get(name, 0)
            if count:
                cycles += count * self._burst_slots(module, name)

        return CycleReport(
            cycles=cycles,
            states_by_block=states_by_block,
            visits_by_block=visits_by_block,
            execution=execution,
            frequency_mhz=self.constraints.frequency_mhz,
        )

    # -- burst-slot memo ----------------------------------------------------
    def _burst_slots(self, module: Module, intrinsic: str) -> int:
        version = module.version
        with self._lock:
            entry = self._burst_cache.get(module)
            if entry is None or entry[0] != version:
                entry = (version, {})
                self._burst_cache[module] = entry
            cached = entry[1].get(intrinsic)
        if cached is None:
            cached = _estimate_burst_slots(module, intrinsic)
            with self._lock:
                entry[1][intrinsic] = cached
        return cached


def _estimate_burst_slots(module: Module, intrinsic: str) -> int:
    """Static mean of constant burst lengths at call sites of ``intrinsic``."""
    from ..ir.values import ConstantInt

    lengths: List[int] = []
    for inst in module.instructions():
        if isinstance(inst, CallInst) and inst.callee_name == intrinsic:
            count_arg = inst.args[-1]
            if isinstance(count_arg, ConstantInt):
                lengths.append(max(0, count_arg.value))
            else:
                lengths.append(16)  # unknown dynamic length: assume a line
    if not lengths:
        return 0
    return int(round(sum(lengths) / len(lengths)))
