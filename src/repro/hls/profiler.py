"""Clock-cycle profiler — the fast LegUp-style cycle estimate.

Huang et al. 2013 observed that under a fixed frequency constraint the
cycle count of the synthesized circuit equals the sum over basic blocks of
(software-trace visit count × scheduled FSM states), because each block's
schedule is static. This module reproduces exactly that computation:

    cycles = Σ_bb  visits(bb) × states(bb)   (+ dynamic burst costs)

The interpreter supplies the visit counts; the scheduler supplies the
states. ``llvm.memset``/``llvm.memcpy`` transfer a dynamic number of
elements, so their per-element burst cost is added from the trace.

Two memoization layers make repeated profiling cheap:

* **Incremental scheduling** — per-function FSM state counts are cached
  under a structural hash of the function body (:mod:`.hashing`), so a
  pass that mutates one function only forces that function to be
  rescheduled; everything else (and every clone of it) hits the cache.
* **Burst-slot memo** — the static mean burst length of
  ``llvm.memset``/``llvm.memcpy`` call sites is cached per
  ``(module, Module.version)``, so back-to-back profiles of an
  unmutated module stop rescanning every instruction.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import telemetry as tm
from ..interp.batch_exec import BatchedKernelExecutor, sim_batch_mode, \
    sim_simd_mode
from ..interp.interpreter import ExecutionResult, Interpreter
from ..interp.kernels import (
    KernelInterpreter,
    VerificationError,
    _error_category,
    run_verified,
)
from ..interp.state import InterpreterLimitExceeded, StepBudgetExceeded, TrapError
from ..ir.instructions import CallInst
from ..ir.module import BasicBlock, Module
from .delays import HLSConstraints, TimingLibrary
from .hashing import structural_key
from .sched_vec import function_state_counts_flat
from .scheduler import Scheduler

__all__ = ["CycleReport", "HLSCompilationError", "StepBudgetError",
           "CycleProfiler", "sim_kernels_mode", "sim_batch_mode",
           "sim_simd_mode"]

# Burst engines move one slot per cycle after setup (see delays.py).
_DYNAMIC_BURST = ("llvm.memset", "llvm.memcpy")


class HLSCompilationError(Exception):
    """The program cannot be synthesized/profiled (the paper's HLS filter)."""


class StepBudgetError(HLSCompilationError):
    """The simulation *step budget* ran out — the program may well be
    synthesizable; it merely exceeded the CPU-time filter. Cache layers
    record this separately from genuine HLS failures."""


def sim_kernels_mode(override: Optional[str] = None) -> str:
    """Resolve the simulation-backend toggle: ``off`` (reference
    interpreter + scheduler), ``on`` (compiled kernels + batched
    scheduler, the default), or ``verify`` (run both, hard-fail on any
    divergence)."""
    mode = override if override is not None else os.environ.get("REPRO_SIM_KERNELS", "on")
    mode = mode.strip().lower()
    if mode not in ("off", "on", "verify"):
        raise ValueError(f"REPRO_SIM_KERNELS must be off|on|verify, got {mode!r}")
    return mode


@dataclass
class CycleReport:
    """The profiler's verdict for one program execution."""

    cycles: int
    states_by_block: Dict[str, int]
    visits_by_block: Dict[str, int]
    execution: ExecutionResult
    frequency_mhz: float

    @property
    def wall_time_us(self) -> float:
        return self.cycles / self.frequency_mhz


class CycleProfiler:
    """Schedule a module, execute it, and combine both into a cycle count."""

    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 library: Optional[TimingLibrary] = None,
                 max_steps: int = 1_000_000,
                 schedule_cache_size: int = 512,
                 sim_kernels: Optional[str] = None,
                 sim_batch: Optional[str] = None,
                 sim_simd: Optional[str] = None) -> None:
        self.scheduler = Scheduler(constraints, library)
        self.constraints = self.scheduler.constraints
        self.max_steps = max_steps
        # off | on | verify; results are bit-identical by contract, so the
        # mode is NOT part of any cache key or toolchain fingerprint.
        self.sim_kernels = sim_kernels_mode(sim_kernels)
        # Same contract for the data-parallel batch executor behind
        # profile_batch (None -> REPRO_SIM_BATCH, default "on").
        self.sim_batch = sim_batch_mode(sim_batch)
        # ...and for its typed-SIMD column tier (None -> REPRO_SIM_SIMD).
        self.sim_simd = sim_simd_mode(sim_simd)
        # structural key -> per-block state counts (block order positional)
        self._schedule_cache: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        self._schedule_cache_size = schedule_cache_size
        self.schedule_cache_hits = 0
        self.schedule_cache_misses = 0
        # module -> (Module.version, {intrinsic: mean burst slots})
        self._burst_cache: "weakref.WeakKeyDictionary[Module, Tuple[int, Dict[str, int]]]" = (
            weakref.WeakKeyDictionary())
        self._lock = threading.Lock()

    def profile(self, module: Module, entry: str = "main") -> CycleReport:
        tm.count("profile.runs")
        # One structural-hash pass feeds every key-addressed cache on the
        # cold path: FSM schedules, compiled kernels, and block plans.
        keys = self._structural_keys(module)
        try:
            with tm.span("profile.schedule"):
                block_states = self._module_block_states(module, keys)
        except VerificationError:
            raise  # a kernel bug, not an HLS failure — fail loudly
        except Exception as exc:  # scheduling failure = HLS failure
            raise HLSCompilationError(f"scheduling failed: {exc}") from exc
        try:
            with tm.span("profile.execute", backend=self.sim_kernels):
                execution = self._execute(module, entry, keys)
        except StepBudgetExceeded as exc:
            raise StepBudgetError(f"execution failed: {exc}") from exc
        except (TrapError, InterpreterLimitExceeded) as exc:
            raise HLSCompilationError(f"execution failed: {exc}") from exc
        return self._combine(module, block_states, execution)

    def profile_batch(self, modules: List[Module],
                      entry: str = "main") -> List[object]:
        """Profile a wave of modules through the data-parallel batch
        executor. Returns one entry per module: a :class:`CycleReport`,
        or the exception that lane failed with (:class:`StepBudgetError`
        / :class:`HLSCompilationError` for legitimate failures, the raw
        exception for crashes) — a failing lane never poisons siblings.

        ``sim_batch=off`` (or a single-module wave) degrades to serial
        :meth:`profile` calls; ``verify`` runs the batch AND the
        per-program path and raises :class:`VerificationError` on any
        ``ExecutionResult.observable()``/:class:`CycleReport`
        divergence, anchoring results to the per-program side."""
        mode = self.sim_batch
        if mode == "off" or len(modules) <= 1:
            return [self._profile_lane(module, entry) for module in modules]
        tm.count("profile.runs", len(modules))
        keyed = [self._structural_keys(module) for module in modules]
        self._schedule_prepass(keyed)
        results: List[object] = [None] * len(modules)
        block_states: List[Optional[Dict]] = [None] * len(modules)
        exec_lanes: List[int] = []
        for i, (module, keys) in enumerate(zip(modules, keyed)):
            try:
                with tm.span("profile.schedule"):
                    block_states[i] = self._module_block_states(module, keys)
                exec_lanes.append(i)
            except VerificationError:
                raise
            except Exception as exc:
                err = HLSCompilationError(f"scheduling failed: {exc}")
                err.__cause__ = exc
                results[i] = err
        if exec_lanes:
            executor = BatchedKernelExecutor(max_steps=self.max_steps,
                                             sim_simd=self.sim_simd)
            with tm.span("profile.execute_batch", backend=mode,
                         lanes=len(exec_lanes)):
                outcomes = executor.run_batch(
                    [(modules[i], keyed[i]) for i in exec_lanes], entry)
            if mode == "verify":
                outcomes = self._verify_batch(modules, keyed, exec_lanes,
                                              outcomes, block_states, entry)
            for i, outcome in zip(exec_lanes, outcomes):
                if isinstance(outcome, ExecutionResult):
                    results[i] = self._combine(modules[i], block_states[i],
                                               outcome)
                else:
                    results[i] = self._map_exec_error(outcome)
        return results

    def _profile_lane(self, module: Module, entry: str) -> object:
        """Serial fallback lane: same per-lane error envelope as the
        batched path (verification bugs still propagate loudly)."""
        try:
            return self.profile(module, entry)
        except VerificationError:
            raise
        except Exception as exc:
            return exc

    @staticmethod
    def _map_exec_error(exc: BaseException) -> BaseException:
        """The HLS-failure envelope :meth:`profile` would raise for this
        execution error; crashes pass through for the caller to wrap."""
        if isinstance(exc, StepBudgetExceeded):
            err: HLSCompilationError = StepBudgetError(f"execution failed: {exc}")
        elif isinstance(exc, (TrapError, InterpreterLimitExceeded)):
            err = HLSCompilationError(f"execution failed: {exc}")
        else:
            return exc
        err.__cause__ = exc
        return err

    def _verify_batch(self, modules: List[Module], keyed: List[Dict],
                      exec_lanes: List[int], outcomes: List[object],
                      block_states: List[Optional[Dict]],
                      entry: str) -> List[object]:
        """Run the per-program path beside every batched lane and
        hard-fail on divergence; per-program results are the anchor."""
        anchored: List[object] = []
        for i, outcome in zip(exec_lanes, outcomes):
            ref_exc: Optional[BaseException] = None
            ref_result: Optional[ExecutionResult] = None
            try:
                ref_result = self._execute(modules[i], entry, keyed[i])
            except VerificationError:
                raise
            except Exception as exc:
                ref_exc = exc
            batch_exc = outcome if isinstance(outcome, BaseException) else None
            if (batch_exc is None) != (ref_exc is None):
                raise VerificationError(
                    f"sim-batch divergence on @{entry}: batched "
                    f"{'raised ' + repr(batch_exc) if batch_exc else 'succeeded'}, "
                    f"per-program "
                    f"{'raised ' + repr(ref_exc) if ref_exc else 'succeeded'}")
            if ref_exc is not None:
                bcat, rcat = _error_category(batch_exc), _error_category(ref_exc)
                if bcat != rcat:
                    raise VerificationError(
                        f"sim-batch divergence on @{entry}: batched error "
                        f"category {bcat} ({batch_exc!r}) != per-program "
                        f"{rcat} ({ref_exc!r})")
                anchored.append(ref_exc)
                continue
            mismatches = []
            if outcome.observable() != ref_result.observable():
                mismatches.append("observable()")
            if outcome.steps != ref_result.steps:
                mismatches.append(
                    f"steps {outcome.steps} != {ref_result.steps}")
            if outcome.block_counts != ref_result.block_counts:
                mismatches.append("block_counts")
            if outcome.call_counts != ref_result.call_counts:
                mismatches.append("call_counts")
            if outcome.output != ref_result.output:
                mismatches.append("output")
            if not mismatches:
                batch_report = self._combine(modules[i], block_states[i], outcome)
                ref_report = self._combine(modules[i], block_states[i], ref_result)
                if batch_report.cycles != ref_report.cycles:
                    mismatches.append(f"cycles {batch_report.cycles} != "
                                      f"{ref_report.cycles}")
                elif batch_report.visits_by_block != ref_report.visits_by_block:
                    mismatches.append("visits_by_block")
            if mismatches:
                raise VerificationError(
                    f"sim-batch divergence on @{entry}: "
                    f"{', '.join(mismatches)}")
            anchored.append(ref_result)
        return anchored

    def _execute(self, module: Module, entry: str, keys: Dict) -> ExecutionResult:
        mode = self.sim_kernels
        if mode == "on":
            return KernelInterpreter(module, max_steps=self.max_steps,
                                     keys=keys).run(entry)
        if mode == "verify":
            return run_verified(module, entry, max_steps=self.max_steps,
                                keys=keys, plan_keys=keys)
        return Interpreter(module, max_steps=self.max_steps,
                           plan_keys=keys).run(entry)

    # -- incremental scheduling ---------------------------------------------
    def _structural_keys(self, module: Module) -> Dict:
        if self._schedule_cache_size <= 0 and self.sim_kernels == "off":
            return {}
        escapes_memo: Dict = {}
        return {func: structural_key(func, escapes_memo)
                for func in module.defined_functions()}

    def _schedule_function(self, func) -> List[int]:
        mode = self.sim_kernels
        if mode == "on":
            return function_state_counts_flat(
                func, self.scheduler.constraints, self.scheduler.library)
        counts = self.scheduler.function_state_counts(func)
        if mode == "verify":
            flat = function_state_counts_flat(
                func, self.scheduler.constraints, self.scheduler.library)
            if flat != counts:
                raise VerificationError(
                    f"batched-scheduler divergence on @{func.name}: "
                    f"{flat} != {counts}")
        return counts

    def _schedule_prepass(self, keyed: List[Dict]) -> None:
        """Schedule each structural hash appearing in a batch wave exactly
        once (hls/sched_vec groups same-hash work): N lanes sharing a
        function body cost one reschedule before the per-lane pass runs,
        so the wave never reschedules a hash twice."""
        if self._schedule_cache_size <= 0:
            return
        unique: "OrderedDict[Tuple, object]" = OrderedDict()
        for keys in keyed:
            for func, key in keys.items():
                unique.setdefault(key, func)
        with self._lock:
            missing = [(key, func) for key, func in unique.items()
                       if key not in self._schedule_cache]
        if not missing:
            return
        with tm.span("profile.schedule_batch", functions=len(missing)):
            for key, func in missing:
                try:
                    with tm.span("profile.reschedule"):
                        counts = self._schedule_function(func)
                except VerificationError:
                    raise
                except Exception:
                    # Leave the hash uncached; the owning lane's serial
                    # scheduling pass re-raises and fails only that lane.
                    continue
                with self._lock:
                    self.schedule_cache_misses += 1
                    self._schedule_cache[key] = counts
                    while len(self._schedule_cache) > self._schedule_cache_size:
                        self._schedule_cache.popitem(last=False)

    def _module_block_states(self, module: Module, keys: Dict) -> Dict[BasicBlock, int]:
        """FSM state count per block, rescheduling only functions whose
        structural hash is not already cached."""
        states: Dict[BasicBlock, int] = {}
        for func in module.defined_functions():
            if self._schedule_cache_size <= 0:
                with tm.span("profile.reschedule"):
                    counts = self._schedule_function(func)
            else:
                key = keys[func]
                with self._lock:
                    counts = self._schedule_cache.get(key)
                    if counts is not None:
                        self._schedule_cache.move_to_end(key)
                        self.schedule_cache_hits += 1
                        tm.count("profile.schedule_hits")
                if counts is None:
                    with tm.span("profile.reschedule"):
                        counts = self._schedule_function(func)
                    with self._lock:
                        self.schedule_cache_misses += 1
                        self._schedule_cache[key] = counts
                        while len(self._schedule_cache) > self._schedule_cache_size:
                            self._schedule_cache.popitem(last=False)
            for bb, n in zip(func.blocks, counts):
                states[bb] = n
        return states

    def _combine(self, module: Module, block_states: Dict[BasicBlock, int],
                 execution: ExecutionResult) -> CycleReport:
        cycles = 0
        states_by_block: Dict[str, int] = {}
        visits_by_block: Dict[str, int] = {}
        for bb, num_states in block_states.items():
            visits = execution.block_counts.get(bb, 0)
            label = f"{bb.parent.name}:{bb.name}" if bb.parent is not None else bb.name
            states_by_block[label] = num_states
            visits_by_block[label] = visits
            cycles += visits * num_states

        # Dynamic burst costs: one extra cycle per transferred slot beyond
        # the scheduled setup latency, recovered from the dynamic trace.
        for name in _DYNAMIC_BURST:
            count = execution.call_counts.get(name, 0)
            if count:
                cycles += count * self._burst_slots(module, name)

        return CycleReport(
            cycles=cycles,
            states_by_block=states_by_block,
            visits_by_block=visits_by_block,
            execution=execution,
            frequency_mhz=self.constraints.frequency_mhz,
        )

    # -- burst-slot memo ----------------------------------------------------
    def _burst_slots(self, module: Module, intrinsic: str) -> int:
        version = module.version
        with self._lock:
            entry = self._burst_cache.get(module)
            if entry is None or entry[0] != version:
                entry = (version, {})
                self._burst_cache[module] = entry
            cached = entry[1].get(intrinsic)
        if cached is None:
            cached = _estimate_burst_slots(module, intrinsic)
            with self._lock:
                entry[1][intrinsic] = cached
        return cached


def _estimate_burst_slots(module: Module, intrinsic: str) -> int:
    """Static mean of constant burst lengths at call sites of ``intrinsic``."""
    from ..ir.values import ConstantInt

    lengths: List[int] = []
    for inst in module.instructions():
        if isinstance(inst, CallInst) and inst.callee_name == intrinsic:
            count_arg = inst.args[-1]
            if isinstance(count_arg, ConstantInt):
                lengths.append(max(0, count_arg.value))
            else:
                lengths.append(16)  # unknown dynamic length: assume a line
    if not lengths:
        return 0
    return int(round(sum(lengths) / len(lengths)))
