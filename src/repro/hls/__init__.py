"""repro.hls — the LegUp-style high-level-synthesis backend.

Scheduling (FSM states per basic block under a frequency constraint),
the fast clock-cycle profiler AutoPhase uses as its reward signal, an
area model for the alternative objective, a Verilog-flavoured RTL
emitter, and the slow schedule-replay verifier.
"""

from .delays import DEFAULT_LIBRARY, HLSConstraints, OpTiming, TimingLibrary
from .scheduler import BlockSchedule, FunctionSchedule, ModuleSchedule, ScheduledOp, Scheduler
from .sched_vec import function_state_counts_flat
from .profiler import (
    CycleProfiler,
    CycleReport,
    HLSCompilationError,
    StepBudgetError,
    sim_batch_mode,
    sim_kernels_mode,
)
from .area import AreaEstimator, AreaReport
from .rtl import RTLEmitter
from .verify import TraceRecorder, replay_cycles, verify_profile

__all__ = [
    "DEFAULT_LIBRARY", "HLSConstraints", "OpTiming", "TimingLibrary",
    "BlockSchedule", "FunctionSchedule", "ModuleSchedule", "ScheduledOp", "Scheduler",
    "function_state_counts_flat",
    "CycleProfiler", "CycleReport", "HLSCompilationError", "StepBudgetError",
    "sim_kernels_mode", "sim_batch_mode",
    "AreaEstimator", "AreaReport",
    "RTLEmitter",
    "TraceRecorder", "replay_cycles", "verify_profile",
]
