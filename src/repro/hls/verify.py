"""Schedule replay — the slow, independent check of the fast profiler.

The paper validates the clock-cycle profiler against full logic
simulation. Our stand-in replays the FSM explicitly: walk the dynamic
block trace in execution order, step the per-block state machine one
state at a time, and count cycles individually. The profiler's closed
form (Σ visits × states) must agree exactly; tests assert this on every
program.

A genuinely distinct code path matters here: the replay consumes the
*ordered* trace while the profiler consumes aggregate counts, so a bug in
either aggregation shows up as a mismatch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..interp.interpreter import Interpreter
from ..ir.module import BasicBlock, Module
from .delays import HLSConstraints
from .scheduler import ModuleSchedule, Scheduler

__all__ = ["TraceRecorder", "replay_cycles", "verify_profile"]


class TraceRecorder(Interpreter):
    """Interpreter subclass that additionally records the ordered block trace."""

    def __init__(self, module: Module, max_steps: int = 1_000_000) -> None:
        super().__init__(module, max_steps=max_steps)
        self.trace: List[BasicBlock] = []

    def _run_block(self, func, frame, block, prev_block, depth):  # type: ignore[override]
        self.trace.append(block)
        return super()._run_block(func, frame, block, prev_block, depth)


def replay_cycles(module: Module, entry: str = "main",
                  constraints: Optional[HLSConstraints] = None,
                  max_steps: int = 1_000_000) -> Tuple[int, List[BasicBlock]]:
    """Count cycles by stepping the FSM through the ordered dynamic trace."""
    schedule = Scheduler(constraints).schedule_module(module)
    recorder = TraceRecorder(module, max_steps=max_steps)
    recorder.run(entry)

    cycles = 0
    for block in recorder.trace:
        assert block.parent is not None
        bsched = schedule.functions[block.parent].blocks[block]
        # Step state-by-state — deliberately not multiplication.
        state = 0
        while state < bsched.num_states:
            cycles += 1
            state += 1
    return cycles, recorder.trace


def verify_profile(module: Module, entry: str = "main",
                   constraints: Optional[HLSConstraints] = None,
                   max_steps: int = 1_000_000) -> bool:
    """True when profiler and replay agree (ignoring dynamic burst costs,
    which only the profiler models — compare on burst-free programs)."""
    from .profiler import CycleProfiler

    profiler = CycleProfiler(constraints, max_steps=max_steps)
    report = profiler.profile(module, entry)
    replayed, _ = replay_cycles(module, entry, constraints, max_steps)
    burst_calls = sum(
        report.execution.call_counts.get(n, 0) for n in ("llvm.memset", "llvm.memcpy")
    )
    if burst_calls:
        return report.cycles >= replayed
    return report.cycles == replayed
