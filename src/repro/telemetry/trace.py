"""Assemble distributed traces from trace-event JSONL and export them.

Every process in trace mode (``REPRO_TELEMETRY=trace``) appends span
begin/end events to a shared trace log — directly for long-lived
processes, or riding worker reply tuples and written by the service
client under the worker's generation-tagged proc name. Each event
carries a globally unique span id, its parent span id, and the trace id
minted at the request's entry point, so grouping by trace id and
parenting by span id reconstructs one request's full cross-process
waterfall.

``repro trace`` renders these as:

* a per-trace listing (``repro trace list``),
* a text waterfall for one trace (``repro trace show --trace T...``),
* Chrome trace-event format (``repro trace export --chrome``), loadable
  in Perfetto / ``chrome://tracing``.

Stdlib-only, like the rest of the telemetry package.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from . import export

__all__ = [
    "assemble_traces",
    "chrome_trace",
    "render_trace_list",
    "render_waterfall",
    "write_chrome_trace",
]


def _span_records(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fold begin/end event pairs into one record per span. End events
    are authoritative (they carry duration and error); a begin without
    its end (process died mid-span) still yields a partial record."""
    spans: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for event in events:
        span_id = event.get("span")
        kind = event.get("event")
        if span_id is None or kind not in ("begin", "end"):
            continue
        span_id = str(span_id)
        rec = spans.get(span_id)
        if rec is None:
            rec = spans[span_id] = {"span": span_id, "complete": False}
            order.append(span_id)
        for key in ("name", "parent", "trace", "proc", "tid", "attrs"):
            if event.get(key) is not None:
                rec[key] = event[key]
        if kind == "begin":
            rec["start"] = event.get("ts")
        else:
            rec["end_ts"] = event.get("ts")
            rec["seconds"] = event.get("seconds")
            rec["error"] = event.get("error")
            rec["complete"] = True
            # A worker's begin event can be lost to a crash while the
            # end arrived in an earlier reply; recover the start from
            # end - duration so the waterfall still places the span.
            if rec.get("start") is None and rec.get("seconds") is not None:
                rec["start"] = rec["end_ts"] - rec["seconds"]
    return [spans[sid] for sid in order]


def assemble_traces(events: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Group span records by trace id, each list sorted by start time.
    Spans with no trace id (pre-upgrade peers) group under ``"-"``."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for rec in _span_records(events):
        trace_id = str(rec.get("trace") or "-")
        traces.setdefault(trace_id, []).append(rec)
    for spans in traces.values():
        spans.sort(key=lambda r: (r.get("start") or 0.0, r["span"]))
    return traces


def render_trace_list(traces: Dict[str, List[Dict[str, Any]]]) -> str:
    """One line per trace: id, span count, processes touched, root op,
    wall-clock extent."""
    if not traces:
        return "(no traces recorded — run with REPRO_TELEMETRY=trace)"
    lines = [f"{'trace':<24} {'spans':>5} {'procs':>5} "
             f"{'wall':>10}  root"]
    for trace_id, spans in sorted(
            traces.items(), key=lambda kv: kv[1][0].get("start") or 0.0):
        starts = [s["start"] for s in spans if s.get("start") is not None]
        ends = [s.get("end_ts") for s in spans if s.get("end_ts") is not None]
        wall = (max(ends) - min(starts)) if starts and ends else None
        roots = [s for s in spans if s.get("parent") is None]
        root = roots[0]["name"] if roots and roots[0].get("name") else "?"
        procs = len({s.get("proc") for s in spans})
        lines.append(f"{trace_id:<24} {len(spans):>5} {procs:>5} "
                     f"{_fmt_wall(wall):>10}  {root}")
    return "\n".join(lines)


def _fmt_wall(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_waterfall(trace_id: str, spans: List[Dict[str, Any]]) -> str:
    """Indented text waterfall for one trace: children nest under their
    parents, each row showing offset from trace start, duration, proc
    and error flag."""
    if not spans:
        return f"trace {trace_id}: (no spans)"
    by_id = {s["span"]: s for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for s in spans:
        parent = s.get("parent")
        # A parent from another process whose events never reached the
        # log renders its orphans at the root level.
        key = parent if parent in by_id else None
        children.setdefault(key, []).append(s)
    starts = [s["start"] for s in spans if s.get("start") is not None]
    t0 = min(starts) if starts else 0.0
    lines = [f"trace {trace_id}"]

    def emit(span: Dict[str, Any], depth: int) -> None:
        start = span.get("start")
        offset = f"+{(start - t0) * 1e3:9.3f}ms" if start is not None else " " * 12
        dur = (_fmt_wall(span.get("seconds"))
               if span.get("seconds") is not None else "(open)")
        error = f"  ERROR={span['error']}" if span.get("error") else ""
        name = span.get("name", "?")
        proc = span.get("proc", "?")
        lines.append(f"{offset} {'  ' * depth}{name:<{max(1, 40 - 2 * depth)}} "
                     f"{dur:>10}  [{proc}]{error}")
        for child in children.get(span["span"], ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    return "\n".join(lines)


def chrome_trace(events: List[Dict[str, Any]],
                 trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Chrome trace-event JSON (``{"traceEvents": [...]}``) from raw
    span events — complete ("ph": "X") events with microsecond
    timestamps, one synthetic pid per repro process (named via metadata
    events) and one tid per OS thread, so Perfetto renders the
    cross-process waterfall on a shared clock."""
    traces = assemble_traces(events)
    if trace_id is not None:
        traces = {trace_id: traces.get(trace_id, [])}
    pids: Dict[str, int] = {}
    tids: Dict[Any, int] = {}
    out: List[Dict[str, Any]] = []
    for tid_key, spans in sorted(traces.items()):
        for span in spans:
            if span.get("start") is None:
                continue
            proc = str(span.get("proc", "?"))
            pid = pids.setdefault(proc, len(pids) + 1)
            tid = tids.setdefault((proc, span.get("tid")), len(tids) + 1)
            args = dict(span.get("attrs") or {})
            args["trace"] = tid_key
            args["span"] = span["span"]
            if span.get("parent") is not None:
                args["parent"] = span["parent"]
            if span.get("error"):
                args["error"] = span["error"]
            out.append({
                "name": span.get("name", "?"),
                "cat": tid_key,
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": (span.get("seconds") or 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    for proc, pid in pids.items():
        out.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                    "args": {"name": proc}})
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(out_path: str, log_path: Optional[str] = None,
                       trace_id: Optional[str] = None) -> int:
    """Export the trace log as a Chrome trace file; returns the number
    of span events written."""
    events = export.read_trace_log(log_path)
    payload = chrome_trace(events, trace_id=trace_id)
    parent = os.path.dirname(os.path.abspath(out_path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")
    return sum(1 for e in payload["traceEvents"] if e.get("ph") == "X")
