"""Aggregate telemetry snapshots across processes and render the
``repro stats`` dashboard.

Aggregation semantics: counters sum, histograms merge bucket-wise
(exactly equivalent to a single-process stream; see
:mod:`repro.telemetry.core`), gauges sum — the gauges we export
(in-flight requests, live workers) are extensive quantities where a
cross-process sum is the fleet total.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .core import merge_snapshots, quantile_from_snapshot

__all__ = ["aggregate", "hist_summary", "render_dashboard", "render_cache_table"]

QUANTILES = (0.5, 0.9, 0.99)


def aggregate(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-process snapshot dicts into one combined view."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    hist_groups: Dict[str, List[Dict[str, Any]]] = {}
    procs = 0
    for snap in snapshots:
        procs += 1
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in (snap.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, hsnap in (snap.get("histograms") or {}).items():
            hist_groups.setdefault(name, []).append(hsnap)
    histograms = {name: merge_snapshots(group)
                  for name, group in sorted(hist_groups.items())}
    return {
        "processes": procs,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": histograms,
    }


def hist_summary(snap: Dict[str, Any]) -> Dict[str, Any]:
    """count/sum/mean + p50/p90/p99 pulled from a merged histogram."""
    total = int(snap.get("count") or 0)
    out: Dict[str, Any] = {
        "count": total,
        "sum": snap.get("sum") or 0.0,
        "mean": (snap["sum"] / total) if total else None,
        "min": snap.get("min"),
        "max": snap.get("max"),
    }
    for q in QUANTILES:
        out[f"p{int(q * 100)}"] = quantile_from_snapshot(snap, q)
    return out


def summarize(aggregated: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-friendly digest: histograms replaced by their summaries."""
    return {
        "processes": aggregated["processes"],
        "counters": aggregated["counters"],
        "gauges": aggregated["gauges"],
        "histograms": {name: hist_summary(snap)
                       for name, snap in aggregated["histograms"].items()},
    }


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _fmt_value(value: Optional[float], is_seconds: bool) -> str:
    if value is None:
        return "-"
    if is_seconds:
        return _fmt_seconds(value)
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


_SECTION_PREFIXES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("engine", ("engine.",)),
    ("kernels & interpreter", ("kernel.", "interp.", "profile.",
                               "batch_exec.")),
    ("service", ("service.", "store.", "worker.")),
    ("training", ("train.",)),
    ("serving", ("policy.", "server.")),
)


def _section_for(name: str) -> str:
    for title, prefixes in _SECTION_PREFIXES:
        if name.startswith(prefixes):
            return title
    return "other"


def render_dashboard(aggregated: Dict[str, Any]) -> str:
    """Textual dashboard for ``repro stats`` grouped by stack layer."""
    lines: List[str] = []
    lines.append(f"telemetry across {aggregated['processes']} process(es)")

    sections: Dict[str, List[str]] = {}

    hists = aggregated["histograms"]
    if hists:
        for name, snap in hists.items():
            s = hist_summary(snap)
            is_seconds = name.endswith(".seconds")
            row = (f"  {name:<42} n={s['count']:<8} "
                   f"p50={_fmt_value(s['p50'], is_seconds):<10} "
                   f"p90={_fmt_value(s['p90'], is_seconds):<10} "
                   f"p99={_fmt_value(s['p99'], is_seconds):<10} "
                   f"max={_fmt_value(s['max'], is_seconds)}")
            if is_seconds:
                row += f" total={_fmt_seconds(s['sum'])}"
            sections.setdefault(_section_for(name), []).append(row)

    counters = aggregated["counters"]
    if counters:
        for name, value in counters.items():
            row = f"  {name:<42} {_fmt_value(value, False)}"
            sections.setdefault(_section_for(name), []).append(row)

    gauges = aggregated["gauges"]
    if gauges:
        for name, value in gauges.items():
            row = f"  {name:<42} {_fmt_value(value, False)} (gauge)"
            sections.setdefault(_section_for(name), []).append(row)

    order = [title for title, _ in _SECTION_PREFIXES] + ["other"]
    for title in order:
        rows = sections.get(title)
        if not rows:
            continue
        lines.append("")
        lines.append(f"[{title}]")
        lines.extend(rows)

    if len(lines) == 1:
        lines.append("  (no metrics recorded yet)")
    return "\n".join(lines)


def render_cache_table(info: Dict[str, Any]) -> str:
    """Hit-rate table over the whole cache hierarchy. ``info`` is
    ``HLSToolchain.aggregate_cache_info()`` output merged with the
    process-wide ``kernel_cache_info()``/``plan_cache_info()`` counters
    (the aggregate deliberately excludes those as non-additive)."""
    rows: List[Tuple[str, int, int, str, bool]] = []

    def add(label: str, hits: Any, misses: Any, always: bool = False) -> None:
        if hits is None and misses is None:
            return
        hits = int(hits or 0)
        misses = int(misses or 0)
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "-"
        rows.append((label, hits, misses, rate, always))

    add("engine result memo", info.get("memo_hits"), info.get("memo_misses"))
    add("engine feature memo", info.get("feature_hits"),
        info.get("feature_misses"))
    # trie "rate" = prefix passes skipped / passes considered
    add("prefix trie (passes saved)", info.get("passes_saved"),
        info.get("passes_applied"))
    add("persistent store", info.get("persistent_hits"),
        info.get("dispatched_requests"))
    # process-global caches render whenever their counters were sampled,
    # even at zero — a standalone `repro cache stats` (no toolchain live
    # in-process) must still show the rows instead of an empty table
    add("kernel cache", info.get("kernel_hits"), info.get("kernel_misses"),
        always=True)
    add("block-plan cache", info.get("plan_hits"), info.get("plan_misses"),
        always=True)
    # "rate" = deduped lanes / lanes submitted to the batch executor
    add("batch executor (lanes deduped)", info.get("batch_dedup_saved"),
        info.get("batch_executed"), always=True)
    # "rate" = typed-tier coverage: column-plan segments / segments run
    add("typed SIMD tier (segments vectorized)",
        info.get("simd_segments_vectorized"),
        info.get("simd_segments_scalar"), always=True)
    add("exec-signature memo", info.get("batch_sig_memo_hits"),
        info.get("batch_sig_memo_misses"), always=True)
    rows = [r for r in rows if r[1] or r[2] or r[4]]
    if not rows:
        return "(no cache activity recorded in this process)"
    label_w = max(max(len(r[0]) for r in rows), len("cache"))
    lines = [f"{'cache':<{label_w}}  {'hits':>10}  {'misses':>10}  {'rate':>7}"]
    for label, hits, misses, rate, _ in rows:
        lines.append(f"{label:<{label_w}}  {hits:>10}  {misses:>10}  {rate:>7}")
    return "\n".join(lines)
