"""Continuous benchmark trending over the ``BENCH_*.json`` family.

Every benchmark harness appends one run to its trajectory file (the
github-action-benchmark shape: a list of runs, each a list of
``{"name", "unit", "value"}`` records). This module is the regression
gate over those trajectories: for every metric it compares the newest
point against a trailing window of prior runs and flags it when it is
worse than the *most forgiving* point of the window by more than a
configurable tolerance.

Comparing against the window's worst prior point (not its mean or
median) is deliberate: the committed trajectories come from shared CI
machines and swing several-fold run to run, so a central-tendency gate
would flag healthy noise. A genuine regression — a newest point beyond
anything the window ever produced, by margin — still trips the gate.

Direction is inferred from the metric's unit:

* throughput units (``.../s``) — higher is better,
* time units (``s``, ``ms``, ``us``) — lower is better,
* ratio units (``x``) — higher is better, unless the metric name
  contains ``overhead`` (e.g. ``telemetry_overhead``), where lower is,
* anything else (sample counts, sizes) is informational and skipped.

``repro bench-trend`` runs this over the repo's committed trajectories
and exits non-zero on any regression — the CI job for ROADMAP item 2.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["check_trends", "direction_for", "load_trajectories",
           "render_trend_report"]

DEFAULT_WINDOW = 5
DEFAULT_TOLERANCE = 0.25

_TIME_UNITS = frozenset({"s", "ms", "us", "seconds"})


def direction_for(name: str, unit: str) -> Optional[str]:
    """'higher' / 'lower' (better), or None for informational metrics."""
    unit = (unit or "").strip()
    if unit.endswith("/s"):
        return "higher"
    if unit in _TIME_UNITS:
        return "lower"
    if unit == "x":
        return "lower" if "overhead" in name.lower() else "higher"
    return None


def load_trajectories(root: str = ".") -> Dict[str, List[List[Dict[str, Any]]]]:
    """``{filename: [run, ...]}`` for every BENCH_*.json under root.
    Files that fail to parse or have the wrong shape raise — a corrupt
    committed trajectory should fail the gate loudly, not be skipped."""
    out: Dict[str, List[List[Dict[str, Any]]]] = {}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        with open(path, encoding="utf-8") as fh:
            runs = json.load(fh)
        if not isinstance(runs, list) or not all(
                isinstance(run, list) for run in runs):
            raise ValueError(f"{path}: expected a list of runs "
                             f"(each a list of metric records)")
        out[os.path.basename(path)] = runs
    return out


def _series(runs: List[List[Dict[str, Any]]]) -> Dict[str, Tuple[str, List[float]]]:
    """Per-metric (unit, values-in-run-order) across a trajectory."""
    series: Dict[str, Tuple[str, List[float]]] = {}
    for run in runs:
        for rec in run:
            name = rec.get("name")
            value = rec.get("value")
            if not isinstance(name, str) or not isinstance(value, (int, float)):
                continue
            unit, values = series.setdefault(name, (str(rec.get("unit", "")),
                                                    []))
            values.append(float(value))
    return series


def check_trends(root: str = ".", window: int = DEFAULT_WINDOW,
                 tolerance: float = DEFAULT_TOLERANCE) -> List[Dict[str, Any]]:
    """One entry per (file, metric): status ``ok`` / ``regressed`` /
    ``baseline`` (fewer than 2 points) / ``skipped`` (no direction)."""
    entries: List[Dict[str, Any]] = []
    for filename, runs in load_trajectories(root).items():
        for name, (unit, values) in sorted(_series(runs).items()):
            direction = direction_for(name, unit)
            entry: Dict[str, Any] = {
                "file": filename, "metric": name, "unit": unit,
                "direction": direction, "points": len(values),
                "newest": values[-1] if values else None,
            }
            if direction is None:
                entry["status"] = "skipped"
            elif len(values) < 2:
                entry["status"] = "baseline"
            else:
                trailing = values[-1 - window:-1]
                newest = values[-1]
                if direction == "lower":
                    reference = max(trailing)
                    threshold = reference * (1.0 + tolerance)
                    regressed = newest > threshold
                else:
                    reference = min(trailing)
                    threshold = reference / (1.0 + tolerance)
                    regressed = newest < threshold
                entry["reference"] = reference
                entry["threshold"] = threshold
                entry["status"] = "regressed" if regressed else "ok"
            entries.append(entry)
    return entries


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}"


def render_trend_report(entries: List[Dict[str, Any]],
                        verbose: bool = False) -> str:
    if not entries:
        return "(no BENCH_*.json trajectories found)"
    counts: Dict[str, int] = {}
    lines: List[str] = []
    for entry in entries:
        status = entry["status"]
        counts[status] = counts.get(status, 0) + 1
        if status == "regressed" or verbose:
            arrow = {"higher": ">=", "lower": "<="}.get(
                entry.get("direction") or "", "")
            bound = (f" (needs {arrow} {_fmt(entry.get('threshold'))}, "
                     f"window {'worst' if status != 'skipped' else ''} "
                     f"{_fmt(entry.get('reference'))})"
                     if entry.get("threshold") is not None else "")
            lines.append(f"{status.upper():<9} {entry['file']}: "
                         f"{entry['metric']} = {_fmt(entry['newest'])} "
                         f"{entry['unit']}{bound}")
    # Coverage summary: every bound decision is visible — informational
    # metrics and single-point baselines are reported, never silent.
    summary = ", ".join(f"{counts.get(k, 0)} {k}"
                        for k in ("ok", "regressed", "baseline", "skipped"))
    lines.append(f"bench-trend: {len(entries)} metric(s) across "
                 f"{len({e['file'] for e in entries})} file(s): {summary}")
    return "\n".join(lines)
