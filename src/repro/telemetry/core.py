"""Process-wide metrics registry and span tracing.

Design goals, in priority order:

1. **Near-zero overhead when disabled.** Every public hook
   (:func:`count`, :func:`observe`, :func:`gauge_set`, :func:`span`)
   first reads a single module global; when telemetry is off that read
   plus one ``is None`` branch is the entire cost, and :func:`span`
   returns a shared no-op singleton so the disabled path allocates
   nothing.
2. **Exact percentiles that merge across processes.** Every histogram
   shares one fixed, log-spaced bucket-bound table, so merging two
   snapshots is element-wise summation of bucket counts and a
   cross-process merge is *exactly* equivalent to having streamed all
   observations into a single histogram. Quantile extraction is
   exact-rank over the cumulative counts (the reported value is the
   bucket upper bound clamped to the observed ``[min, max]``), so a
   one-sample histogram reports that sample exactly at every quantile.
3. **Stdlib only.** The telemetry package must be importable from every
   layer (engine, interp, service, rl, deploy) without creating import
   cycles, so it depends on nothing inside ``repro``.

Gating: ``REPRO_TELEMETRY=off|on|trace`` (default ``off``). ``trace``
additionally records per-span begin/end events with parent/child ids,
retrievable via :func:`trace_events`.
"""

from __future__ import annotations

import itertools
import math
import os
import threading
import time
from collections import deque as _deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "FLIGHT_SPANS",
    "Histogram",
    "MetricsRegistry",
    "READABLE_SCHEMAS",
    "SCHEMA_VERSION",
    "attach_trace",
    "configure",
    "configure_from_env",
    "count",
    "current_trace",
    "drain_trace_events",
    "enabled",
    "flight_spans",
    "gauge_set",
    "get_registry",
    "merge_snapshots",
    "mode",
    "observe",
    "quantile_from_snapshot",
    "reset_for_child",
    "set_flight_sink",
    "span",
    "trace_enabled",
    "trace_events",
]

# Version stamped onto every exported JSONL line (metrics snapshots and
# trace batches alike); readers skip lines whose schema they cannot
# parse, mirroring the persistent store's READABLE_VERSIONS gate, so the
# log format can evolve without breaking older `repro stats`/`repro
# trace` binaries reading a shared log.
SCHEMA_VERSION = 1
READABLE_SCHEMAS = frozenset({1})

# Completed spans kept in the per-process flight-recorder ring buffer
# (trace mode only); dumped into the trace log on VerificationError or
# worker death so the failing wave is reconstructable post-mortem.
FLIGHT_SPANS = 64

# --------------------------------------------------------------------------
# Shared histogram bucket geometry
# --------------------------------------------------------------------------

def _build_bounds() -> Tuple[float, ...]:
    """Fixed log-spaced bounds: 8 buckets per decade from 1e-7 to 1e4.

    One global table (rather than per-histogram bounds) is what makes
    snapshot merging a plain vector sum and keeps every exported record
    self-describing with a single shared schema. The range covers
    sub-microsecond span timings up to multi-hour wall clocks; counts
    such as batch sizes or interpreter steps also land comfortably
    inside it.
    """
    per_decade = 8
    lo_exp, hi_exp = -7, 4
    bounds = [
        10.0 ** (exp + i / per_decade)
        for exp in range(lo_exp, hi_exp)
        for i in range(per_decade)
    ]
    bounds.append(10.0 ** hi_exp)
    return tuple(bounds)


BUCKET_BOUNDS: Tuple[float, ...] = _build_bounds()
_NBUCKETS = len(BUCKET_BOUNDS) + 1  # +1 overflow bucket


def _bucket_index(value: float) -> int:
    """Index of the first bound >= value (bisect over the fixed table)."""
    lo, hi = 0, len(BUCKET_BOUNDS)
    while lo < hi:
        mid = (lo + hi) // 2
        if BUCKET_BOUNDS[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


# --------------------------------------------------------------------------
# Histogram
# --------------------------------------------------------------------------

class Histogram:
    """Fixed-bucket histogram with exact-rank quantiles.

    Not internally locked; the registry serializes mutation. ``min``/
    ``max``/``sum`` are tracked exactly so single-sample and clamped
    quantiles stay exact.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * _NBUCKETS
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[_bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> Optional[float]:
        return _quantile(self.counts, self.count, self.min, self.max, q)

    def snapshot(self) -> Dict[str, Any]:
        """Sparse, merge-ready dict: only non-empty buckets are listed."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
        }


def _quantile(counts: List[int], total: int, lo: float, hi: float,
              q: float) -> Optional[float]:
    """Exact-rank quantile: value at rank ``max(1, ceil(q * total))``.

    The reported value is the upper bound of the bucket holding that
    rank, clamped to the observed ``[lo, hi]`` — so ``q=1.0`` returns
    the true maximum and a single-sample histogram returns its sample
    at every quantile.
    """
    if total <= 0:
        return None
    rank = max(1, math.ceil(q * total))
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= rank:
            upper = BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else hi
            return min(max(upper, lo), hi)
    return hi  # unreachable when counts sum to total


def quantile_from_snapshot(snap: Dict[str, Any], q: float) -> Optional[float]:
    """Exact-rank quantile over a (possibly merged) snapshot dict."""
    total = int(snap.get("count") or 0)
    if total <= 0:
        return None
    counts = [0] * _NBUCKETS
    for idx, c in (snap.get("buckets") or {}).items():
        counts[int(idx)] = int(c)
    return _quantile(counts, total, float(snap["min"]), float(snap["max"]), q)


def merge_snapshots(snaps: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge histogram snapshots; exactly equals a single-process stream
    of the union of observations (shared bucket table => vector sum)."""
    counts = [0] * _NBUCKETS
    total = 0
    acc = 0.0
    lo, hi = math.inf, -math.inf
    for snap in snaps:
        c = int(snap.get("count") or 0)
        if c == 0:
            continue
        total += c
        acc += float(snap.get("sum") or 0.0)
        lo = min(lo, float(snap["min"]))
        hi = max(hi, float(snap["max"]))
        for idx, n in (snap.get("buckets") or {}).items():
            counts[int(idx)] += int(n)
    return {
        "count": total,
        "sum": acc,
        "min": None if total == 0 else lo,
        "max": None if total == 0 else hi,
        "buckets": {str(i): c for i, c in enumerate(counts) if c},
    }


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

class MetricsRegistry:
    """Thread-safe home for every counter/gauge/histogram in a process."""

    def __init__(self, trace: bool = False,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._trace = trace
        self._events: List[Dict[str, Any]] = []
        self._span_ids = itertools.count(1)
        self._span_stack = threading.local()
        # Span/trace ids carry a per-registry random seed so they stay
        # globally unique across processes (and across reset_for_child
        # within one process) — a worker's span can cite a client span
        # as parent without coordination. Allocated only under trace
        # mode; the metrics-only path never touches any of this.
        if trace:
            self._id_seed = os.urandom(4).hex()
            self._trace_ids = itertools.count(1)
            self._flight = _deque(maxlen=FLIGHT_SPANS)
            self._flight_last_exc: Optional[int] = None
        self.attrs = dict(attrs or {})
        self.created = time.time()

    # -- metric mutation ---------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge_add(self, name: str, delta: float) -> None:
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> "_Span":
        return _Span(self, name, attrs)

    def _new_span_id(self) -> str:
        return f"{self._id_seed}.{next(self._span_ids)}"

    def _new_trace_id(self) -> str:
        return f"T{self._id_seed}.{next(self._trace_ids)}"

    def _span_begin(self) -> Tuple[str, str, Optional[str]]:
        """Allocate a span id and resolve (span, trace, parent) for a
        span opening on the calling thread: nested spans inherit the
        thread's open trace, root spans inherit an attached remote
        context when one is set, and otherwise mint a fresh trace id.
        Trace mode only."""
        tl = self._span_stack
        stack = getattr(tl, "stack", None)
        if stack is None:
            stack = tl.stack = []
        if stack:
            parent: Optional[str] = stack[-1]
            trace_id = tl.trace
        else:
            remote = getattr(tl, "remote", None)
            if remote is not None:
                trace_id, parent = remote
            else:
                trace_id, parent = self._new_trace_id(), None
            tl.trace = trace_id
        span_id = self._new_span_id()
        stack.append(span_id)
        return span_id, trace_id, parent

    def _span_end(self) -> None:
        tl = self._span_stack
        stack = getattr(tl, "stack", None)
        if stack:
            stack.pop()
            if not stack:
                tl.trace = None

    def current_trace(self) -> Optional[Tuple[str, Optional[str]]]:
        """(trace id, innermost open span id) on the calling thread, the
        attached remote context when no span is open, else None."""
        tl = self._span_stack
        stack = getattr(tl, "stack", None)
        if stack:
            return (tl.trace, stack[-1])
        remote = getattr(tl, "remote", None)
        return (remote[0], remote[1]) if remote is not None else None

    def attach(self, ctx) -> "_TraceAttach":
        return _TraceAttach(self, (str(ctx[0]),
                                   None if ctx[1] is None else str(ctx[1])))

    def _trace_event(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def trace(self) -> bool:
        return self._trace

    def trace_events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def drain_trace_events(self) -> List[Dict[str, Any]]:
        """Return accumulated trace events and clear the buffer — the
        exporter's read side, so periodic flushes never duplicate."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def flight_spans(self) -> List[Dict[str, Any]]:
        """The last-N completed spans (trace mode only; [] otherwise)."""
        if not self._trace:
            return []
        with self._lock:
            return list(self._flight)

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "attrs": dict(self.attrs),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.snapshot()
                    for name, h in self._histograms.items()
                },
            }

    def merge_snapshot(self, snap: Dict[str, Any],
                       prefix: str = "") -> None:
        """Fold a foreign snapshot (e.g. from a worker process) into this
        registry. Counter values add; gauges overwrite; histograms merge
        bucket-wise. ``prefix`` namespaces the foreign metric names."""
        counters = snap.get("counters") or {}
        gauges = snap.get("gauges") or {}
        hists = snap.get("histograms") or {}
        with self._lock:
            for name, value in counters.items():
                key = prefix + name
                self._counters[key] = self._counters.get(key, 0.0) + value
            for name, value in gauges.items():
                self._gauges[prefix + name] = value
            for name, hsnap in hists.items():
                key = prefix + name
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = Histogram()
                c = int(hsnap.get("count") or 0)
                if c == 0:
                    continue
                hist.count += c
                hist.sum += float(hsnap.get("sum") or 0.0)
                hist.min = min(hist.min, float(hsnap["min"]))
                hist.max = max(hist.max, float(hsnap["max"]))
                for idx, n in (hsnap.get("buckets") or {}).items():
                    hist.counts[int(idx)] += int(n)


class _Span:
    """Timing context manager; records a ``<name>.seconds`` histogram
    sample on exit and, under ``trace`` mode, begin/end events carrying
    trace/span/parent ids and attributes."""

    __slots__ = ("_registry", "name", "attrs", "_start", "span_id",
                 "parent_id", "trace_id")

    def __init__(self, registry: MetricsRegistry, name: str,
                 attrs: Dict[str, Any]) -> None:
        self._registry = registry
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "_Span":
        reg = self._registry
        if reg.trace:
            self.span_id, self.trace_id, self.parent_id = reg._span_begin()
            reg._trace_event({
                "event": "begin", "span": self.span_id,
                "parent": self.parent_id, "trace": self.trace_id,
                "name": self.name, "ts": time.time(),
                "tid": threading.get_ident(), "attrs": dict(self.attrs),
            })
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        reg = self._registry
        reg.observe(self.name + ".seconds", elapsed)
        if exc_type is not None:
            reg.count(self.name + ".errors")
        if reg.trace:
            reg._span_end()
            record = {
                "event": "end", "span": self.span_id,
                "parent": self.parent_id, "trace": self.trace_id,
                "name": self.name, "ts": time.time(), "seconds": elapsed,
                "tid": threading.get_ident(),
                "error": exc_type.__name__ if exc_type else None,
                "attrs": dict(self.attrs),
            }
            with reg._lock:
                reg._events.append(record)
                reg._flight.append(record)
            # Flight-recorder dump: a VerificationError anywhere in the
            # stack (kernel/batch/SIMD verify tiers) snapshots the last-N
            # spans into the trace log for post-mortems. Matched by name
            # because telemetry stays stdlib-only (no repro imports);
            # deduped per exception instance so one error unwinding
            # through nested spans dumps once.
            if (exc_type is not None and _flight_sink is not None
                    and exc_type.__name__ == "VerificationError"
                    and reg._flight_last_exc != id(exc)):
                reg._flight_last_exc = id(exc)
                try:
                    _flight_sink(f"VerificationError in span {self.name}")
                except Exception:
                    pass


class _TraceAttach:
    """Thread-local remote trace context for the duration of a block:
    root spans opened inside parent to ``ctx = (trace_id, span_id)``
    instead of minting a fresh trace — the receive side of cross-process
    (and cross-thread) propagation."""

    __slots__ = ("_registry", "_ctx", "_prev")

    def __init__(self, registry: MetricsRegistry,
                 ctx: Tuple[str, Optional[str]]) -> None:
        self._registry = registry
        self._ctx = ctx
        self._prev: Any = None

    def __enter__(self) -> "_TraceAttach":
        tl = self._registry._span_stack
        self._prev = getattr(tl, "remote", None)
        tl.remote = self._ctx
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._registry._span_stack.remote = self._prev


class _NoopSpan:
    """Shared do-nothing span; the entire disabled-mode span cost is one
    global read and returning this singleton (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


# --------------------------------------------------------------------------
# Module-level gate + hooks
# --------------------------------------------------------------------------

_registry: Optional[MetricsRegistry] = None


def configure(mode: str = "on",
              attrs: Optional[Dict[str, Any]] = None) -> Optional[MetricsRegistry]:
    """Install (or tear down, with ``mode='off'``) the global registry."""
    global _registry
    if mode not in ("off", "on", "trace"):
        raise ValueError(f"unknown telemetry mode {mode!r}; "
                         "expected off|on|trace")
    if mode == "off":
        _registry = None
    else:
        _registry = MetricsRegistry(trace=(mode == "trace"), attrs=attrs)
    return _registry


def configure_from_env(attrs: Optional[Dict[str, Any]] = None) -> Optional[MetricsRegistry]:
    return configure(os.environ.get("REPRO_TELEMETRY", "off").strip().lower()
                     or "off", attrs=attrs)


def reset_for_child(attrs: Optional[Dict[str, Any]] = None) -> Optional[MetricsRegistry]:
    """Replace a fork-inherited registry with a fresh one (same mode).

    Forked workers inherit the parent's counters; without this reset a
    worker snapshot would double-count everything the parent had already
    recorded at fork time.
    """
    global _registry
    if _registry is None:
        return None
    merged = dict(_registry.attrs)
    merged.update(attrs or {})
    _registry = MetricsRegistry(trace=_registry.trace, attrs=merged)
    return _registry


def get_registry() -> Optional[MetricsRegistry]:
    return _registry


def enabled() -> bool:
    return _registry is not None


def trace_enabled() -> bool:
    return _registry is not None and _registry.trace


def mode() -> str:
    if _registry is None:
        return "off"
    return "trace" if _registry.trace else "on"


def count(name: str, value: float = 1.0) -> None:
    reg = _registry
    if reg is not None:
        reg.count(name, value)


def gauge_set(name: str, value: float) -> None:
    reg = _registry
    if reg is not None:
        reg.gauge_set(name, value)


def gauge_add(name: str, delta: float) -> None:
    reg = _registry
    if reg is not None:
        reg.gauge_add(name, delta)


def observe(name: str, value: float) -> None:
    reg = _registry
    if reg is not None:
        reg.observe(name, value)


def span(name: str, **attrs: Any):
    reg = _registry
    if reg is None:
        return _NOOP_SPAN
    return reg.span(name, **attrs)


def trace_events() -> List[Dict[str, Any]]:
    reg = _registry
    return reg.trace_events() if reg is not None else []


def drain_trace_events() -> List[Dict[str, Any]]:
    reg = _registry
    if reg is None or not reg.trace:
        return []
    return reg.drain_trace_events()


def current_trace() -> Optional[Tuple[str, Optional[str]]]:
    """Context to propagate across a process/thread boundary, or None.
    Always None outside trace mode — the near-free off/on path never
    allocates trace context."""
    reg = _registry
    if reg is None or not reg.trace:
        return None
    return reg.current_trace()


def attach_trace(ctx):
    """Context manager adopting a remote ``(trace_id, parent_span_id)``
    pair (e.g. decoded from a request tuple) as the parent of root spans
    opened inside. No-op (shared singleton, zero allocation) when trace
    mode is off, ``ctx`` is None, or ``ctx`` is malformed — old peers
    sending nothing keep working."""
    reg = _registry
    if reg is None or not reg.trace or not ctx:
        return _NOOP_SPAN
    try:
        trace_id, parent = ctx[0], ctx[1]
    except (TypeError, IndexError, KeyError):
        return _NOOP_SPAN
    if not trace_id:
        return _NOOP_SPAN
    return reg.attach((trace_id, parent))


def flight_spans() -> List[Dict[str, Any]]:
    reg = _registry
    return reg.flight_spans() if reg is not None else []


# Installed by repro.telemetry.export at import time; writes the flight
# ring buffer into the trace log. A hook (rather than an import) keeps
# core free of any dependency on the exporter.
_flight_sink: Optional[Callable[[str], Any]] = None


def set_flight_sink(fn: Optional[Callable[[str], Any]]) -> None:
    global _flight_sink
    _flight_sink = fn


def snapshot() -> Optional[Dict[str, Any]]:
    reg = _registry
    return reg.snapshot() if reg is not None else None


# Configure from the environment at import time so instrumented modules
# need no explicit setup; tests and the CLI may re-call configure().
configure_from_env()
