"""JSONL snapshot exporter.

When telemetry is enabled each participating process periodically (and
at exit) appends one JSON line to a shared log — default
``.repro-telemetry/metrics.jsonl``, overridable via
``REPRO_TELEMETRY_LOG`` (set it empty to disable the exporter while
keeping in-process metrics). Each line carries a process id and a
monotonically increasing ``seq``; readers keep only the newest record
per process and then merge across processes, so the log is an
append-only stream that always reconstructs current state.

Extra *snapshot providers* let one process export registries it holds
on behalf of others: the service client registers a provider returning
the latest telemetry snapshot from each worker (riding the existing
reply tuples), so worker metrics reach the log without workers ever
opening files.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from . import core

__all__ = [
    "DEFAULT_LOG_PATH",
    "DEFAULT_TRACE_LOG_PATH",
    "add_snapshot_provider",
    "collect_snapshots",
    "export_now",
    "export_trace_events",
    "export_trace_now",
    "flight_record",
    "log_path",
    "read_log",
    "read_trace_log",
    "remove_snapshot_provider",
    "start_exporter",
    "stop_exporter",
    "trace_log_path",
]

DEFAULT_LOG_PATH = os.path.join(".repro-telemetry", "metrics.jsonl")
DEFAULT_TRACE_LOG_PATH = os.path.join(".repro-telemetry", "trace.jsonl")

# Providers return a list of extra snapshot records (already in
# record-dict form minus seq/ts, see _record()).
_providers: List[Callable[[], List[Dict[str, Any]]]] = []
_providers_lock = threading.Lock()

_seq = 0
_exporter_thread: Optional[threading.Thread] = None
_exporter_stop: Optional[threading.Event] = None
_atexit_registered = False


def log_path() -> Optional[str]:
    """Resolved log path, or None when exporting is disabled."""
    if not core.enabled():
        return None
    path = os.environ.get("REPRO_TELEMETRY_LOG")
    if path is None:
        return DEFAULT_LOG_PATH
    path = path.strip()
    return path or None


def trace_log_path() -> Optional[str]:
    """Resolved trace-event log path, or None when trace mode is off.
    ``REPRO_TELEMETRY_TRACE_LOG`` overrides the default (empty value
    disables trace export while keeping in-process events)."""
    if not core.trace_enabled():
        return None
    path = os.environ.get("REPRO_TELEMETRY_TRACE_LOG")
    if path is None:
        return DEFAULT_TRACE_LOG_PATH
    path = path.strip()
    return path or None


def add_snapshot_provider(fn: Callable[[], List[Dict[str, Any]]]) -> None:
    with _providers_lock:
        if fn not in _providers:
            _providers.append(fn)


def remove_snapshot_provider(fn: Callable[[], List[Dict[str, Any]]]) -> None:
    with _providers_lock:
        if fn in _providers:
            _providers.remove(fn)


def _record(proc: str, snap: Dict[str, Any]) -> Dict[str, Any]:
    return {"proc": proc, "snapshot": snap}


def collect_snapshots() -> List[Dict[str, Any]]:
    """This process's snapshot plus anything the providers contribute."""
    records: List[Dict[str, Any]] = []
    snap = core.snapshot()
    if snap is not None:
        records.append(_record(f"pid:{os.getpid()}", snap))
    with _providers_lock:
        providers = list(_providers)
    for provider in providers:
        try:
            records.extend(provider())
        except Exception:
            pass  # a dead provider must never break the exporter
    return records


def export_now(path: Optional[str] = None) -> int:
    """Append one snapshot line per known process; returns lines written."""
    global _seq
    path = path if path is not None else log_path()
    if path is None or not core.enabled():
        return 0
    records = collect_snapshots()
    if not records:
        return 0
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    now = time.time()
    lines = []
    for rec in records:
        _seq += 1
        rec = dict(rec)
        rec["schema"] = core.SCHEMA_VERSION
        rec["seq"] = _seq
        rec["ts"] = now
        rec["writer"] = os.getpid()
        lines.append(json.dumps(rec, sort_keys=True))
    _append_lines(path, lines)
    return len(lines)


def _append_lines(path: str, lines: List[str]) -> None:
    # One os.write of the whole batch onto an O_APPEND fd keeps records
    # atomic per POSIX even with several exporting processes.
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    data = ("\n".join(lines) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def export_trace_events(proc: str, events: List[Dict[str, Any]],
                        path: Optional[str] = None,
                        kind: str = "trace") -> int:
    """Append one trace-batch line (``kind: trace`` span events, or
    ``kind: flight`` for a flight-recorder dump) under ``proc``'s
    identity. The service client calls this with each worker's
    generation-tagged proc name — worker trace events ride reply tuples
    and reach the log without workers ever opening files."""
    path = path if path is not None else trace_log_path()
    if path is None or not events:
        return 0
    record = {
        "schema": core.SCHEMA_VERSION,
        "kind": kind,
        "proc": proc,
        "ts": time.time(),
        "writer": os.getpid(),
        "events": events,
    }
    _append_lines(path, [json.dumps(record, sort_keys=True, default=repr)])
    return 1


def export_trace_now(path: Optional[str] = None) -> int:
    """Drain this process's trace-event buffer into the trace log."""
    if not core.trace_enabled():
        return 0
    events = core.drain_trace_events()
    if not events:
        return 0
    return export_trace_events(f"pid:{os.getpid()}", events, path=path)


def flight_record(reason: str, path: Optional[str] = None) -> int:
    """Dump the flight-recorder ring buffer (last-N completed spans)
    into the trace log with ``reason`` attached; trace mode only."""
    if not core.trace_enabled():
        return 0
    spans = core.flight_spans()
    if not spans:
        return 0
    events = [{"event": "flight", "reason": reason}] + spans
    return export_trace_events(f"pid:{os.getpid()}", events, path=path,
                               kind="flight")


# The span-exit VerificationError hook (see core._Span.__exit__) writes
# through this sink; registered here so core stays exporter-agnostic.
core.set_flight_sink(flight_record)


def start_exporter(interval: float = 15.0) -> bool:
    """Start the periodic background exporter (idempotent). Also
    registers an atexit final flush. No-op when telemetry is off or the
    log path is disabled."""
    global _exporter_thread, _exporter_stop, _atexit_registered
    if log_path() is None:
        return False
    if not _atexit_registered:
        atexit.register(_atexit_flush)
        _atexit_registered = True
    if _exporter_thread is not None and _exporter_thread.is_alive():
        return True
    stop = threading.Event()

    def loop() -> None:
        while not stop.wait(interval):
            try:
                export_now()
                export_trace_now()
            except Exception:
                pass

    thread = threading.Thread(target=loop, name="telemetry-exporter",
                              daemon=True)
    _exporter_stop = stop
    _exporter_thread = thread
    thread.start()
    return True


def stop_exporter(flush: bool = True) -> None:
    global _exporter_thread, _exporter_stop
    if _exporter_stop is not None:
        _exporter_stop.set()
    _exporter_thread = None
    _exporter_stop = None
    if flush:
        try:
            export_now()
            export_trace_now()
        except Exception:
            pass


def _atexit_flush() -> None:
    try:
        if core.enabled():
            export_now()
            export_trace_now()
    except Exception:
        pass


def _iter_records(path: str):
    """Well-formed, schema-readable records from a JSONL log. Malformed
    lines (torn writes from a crashed process) and records stamped with
    a schema version this reader does not know are skipped — the same
    forward-compatibility gate the persistent store applies."""
    if not os.path.exists(path):
        return
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if rec.get("schema", 1) not in core.READABLE_SCHEMAS:
                continue
            yield rec


def read_log(path: Optional[str] = None) -> Dict[str, Dict[str, Any]]:
    """Latest record per process from the JSONL log (newest seq/ts wins).
    Malformed lines and unknown schema versions are skipped."""
    if path is None:
        path = os.environ.get("REPRO_TELEMETRY_LOG") or DEFAULT_LOG_PATH
    latest: Dict[str, Dict[str, Any]] = {}
    for rec in _iter_records(path):
        proc = rec.get("proc")
        if not isinstance(proc, str) or "snapshot" not in rec:
            continue
        prev = latest.get(proc)
        if prev is None or (rec.get("ts", 0), rec.get("seq", 0)) >= (
                prev.get("ts", 0), prev.get("seq", 0)):
            latest[proc] = rec
    return latest


def read_trace_log(path: Optional[str] = None) -> List[Dict[str, Any]]:
    """Every span event from the trace JSONL, annotated with the proc
    that emitted it (``kind: flight`` dump lines ride along with their
    reason marker). Order is file order — assembly sorts by timestamp."""
    if path is None:
        path = (os.environ.get("REPRO_TELEMETRY_TRACE_LOG")
                or DEFAULT_TRACE_LOG_PATH)
    out: List[Dict[str, Any]] = []
    for rec in _iter_records(path):
        proc = rec.get("proc")
        events = rec.get("events")
        if not isinstance(proc, str) or not isinstance(events, list):
            continue
        kind = rec.get("kind", "trace")
        for event in events:
            if isinstance(event, dict):
                out.append({**event, "proc": proc, "kind": kind})
    return out
