"""Telemetry spine: process-wide metrics, span tracing, JSONL export.

Usage from instrumented code (all hooks are near-zero-cost no-ops when
``REPRO_TELEMETRY`` is ``off``, the default)::

    from .. import telemetry as tm

    with tm.span("engine.materialize", passes=n):
        ...
    tm.count("engine.memo_hits")
    tm.observe("service.batch_size", len(batch))

``REPRO_TELEMETRY=on`` records metrics; ``trace`` additionally records
per-span begin/end events with parent/child nesting.
``REPRO_TELEMETRY_LOG`` points the JSONL snapshot exporter somewhere
other than ``.repro-telemetry/metrics.jsonl`` (empty value disables it).
``repro stats`` renders the merged cross-process view.
"""

from .core import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    configure,
    configure_from_env,
    count,
    enabled,
    gauge_add,
    gauge_set,
    get_registry,
    merge_snapshots,
    mode,
    observe,
    quantile_from_snapshot,
    reset_for_child,
    snapshot,
    span,
    trace_enabled,
    trace_events,
)
from .export import (
    DEFAULT_LOG_PATH,
    add_snapshot_provider,
    collect_snapshots,
    export_now,
    log_path,
    read_log,
    remove_snapshot_provider,
    start_exporter,
    stop_exporter,
)

__all__ = [
    "BUCKET_BOUNDS",
    "DEFAULT_LOG_PATH",
    "Histogram",
    "MetricsRegistry",
    "add_snapshot_provider",
    "collect_snapshots",
    "configure",
    "configure_from_env",
    "count",
    "enabled",
    "export_now",
    "gauge_add",
    "gauge_set",
    "get_registry",
    "init_process",
    "log_path",
    "merge_snapshots",
    "mode",
    "observe",
    "quantile_from_snapshot",
    "read_log",
    "remove_snapshot_provider",
    "reset_for_child",
    "snapshot",
    "span",
    "start_exporter",
    "stop_exporter",
    "trace_enabled",
    "trace_events",
]


def init_process(interval: float = 15.0) -> bool:
    """Start the periodic JSONL exporter for this process when telemetry
    is enabled (idempotent; a no-op when off). Entry points — the CLI,
    both socket servers — call this once so long-lived processes leave a
    metrics trail without any per-module setup."""
    if not enabled():
        return False
    return start_exporter(interval)
