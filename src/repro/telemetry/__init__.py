"""Telemetry spine: process-wide metrics, span tracing, JSONL export.

Usage from instrumented code (all hooks are near-zero-cost no-ops when
``REPRO_TELEMETRY`` is ``off``, the default)::

    from .. import telemetry as tm

    with tm.span("engine.materialize", passes=n):
        ...
    tm.count("engine.memo_hits")
    tm.observe("service.batch_size", len(batch))

``REPRO_TELEMETRY=on`` records metrics; ``trace`` additionally records
per-span begin/end events with parent/child nesting under
process-unique trace ids that propagate across thread, fork and socket
boundaries (``attach_trace`` / ``current_trace``), plus a bounded
flight-recorder ring of recently completed spans dumped on
``VerificationError`` or worker death.
``REPRO_TELEMETRY_LOG`` points the JSONL snapshot exporter somewhere
other than ``.repro-telemetry/metrics.jsonl`` (empty value disables it);
``REPRO_TELEMETRY_TRACE_LOG`` does the same for the span-event log under
trace mode. ``repro stats`` renders the merged cross-process view;
``repro trace`` renders per-trace waterfalls and Chrome trace export.
"""

from .core import (
    BUCKET_BOUNDS,
    FLIGHT_SPANS,
    READABLE_SCHEMAS,
    SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    attach_trace,
    configure,
    configure_from_env,
    count,
    current_trace,
    drain_trace_events,
    enabled,
    flight_spans,
    gauge_add,
    gauge_set,
    get_registry,
    merge_snapshots,
    mode,
    observe,
    quantile_from_snapshot,
    reset_for_child,
    snapshot,
    span,
    trace_enabled,
    trace_events,
)
from .export import (
    DEFAULT_LOG_PATH,
    DEFAULT_TRACE_LOG_PATH,
    add_snapshot_provider,
    collect_snapshots,
    export_now,
    export_trace_events,
    export_trace_now,
    flight_record,
    log_path,
    read_log,
    read_trace_log,
    remove_snapshot_provider,
    start_exporter,
    stop_exporter,
    trace_log_path,
)

__all__ = [
    "BUCKET_BOUNDS",
    "DEFAULT_LOG_PATH",
    "DEFAULT_TRACE_LOG_PATH",
    "FLIGHT_SPANS",
    "Histogram",
    "MetricsRegistry",
    "READABLE_SCHEMAS",
    "SCHEMA_VERSION",
    "add_snapshot_provider",
    "attach_trace",
    "collect_snapshots",
    "configure",
    "configure_from_env",
    "count",
    "current_trace",
    "drain_trace_events",
    "enabled",
    "export_now",
    "export_trace_events",
    "export_trace_now",
    "flight_record",
    "flight_spans",
    "gauge_add",
    "gauge_set",
    "get_registry",
    "init_process",
    "log_path",
    "merge_snapshots",
    "mode",
    "observe",
    "quantile_from_snapshot",
    "read_log",
    "read_trace_log",
    "remove_snapshot_provider",
    "reset_for_child",
    "snapshot",
    "span",
    "start_exporter",
    "stop_exporter",
    "trace_enabled",
    "trace_events",
    "trace_log_path",
]


def init_process(interval: float = 15.0) -> bool:
    """Start the periodic JSONL exporter for this process when telemetry
    is enabled (idempotent; a no-op when off). Entry points — the CLI,
    both socket servers — call this once so long-lived processes leave a
    metrics trail without any per-module setup."""
    if not enabled():
        return False
    return start_exporter(interval)
