"""Declarative SLO targets evaluated against merged telemetry snapshots.

A config is JSON with a list of targets under ``"slos"``; each target
is one of three shapes::

    {"slos": [
      {"name": "server batch p99",
       "metric": "server.op.batch.seconds", "quantile": 0.99, "max": 0.5},
      {"name": "worker error rate",
       "ratio": ["worker.evaluate.errors", "worker.items"], "max": 0.01},
      {"name": "memo hit rate",
       "ratio": ["engine.memo_hits",
                 ["engine.memo_hits", "engine.memo_misses"]], "min": 0.8},
      {"name": "queue wait p90",
       "metric": "worker.queue_wait.seconds", "quantile": 0.9, "max": 0.2},
      {"name": "respawn budget",
       "counter": "service.worker_respawns", "max": 0}
    ]}

* ``metric`` targets bound a quantile of a histogram (p99 latency per
  span family, queue wait, ...). A histogram with no samples is a
  violation only when ``require: true`` is set.
* ``ratio`` targets bound a counter ratio — error rate (``max``) or
  cache hit-rate (``min``). Numerator/denominator are counter names or
  lists of counter names to sum; a zero denominator evaluates as 0.
* ``counter`` targets bound a raw counter value.

``repro slo check --config slo.json`` evaluates every target against
the aggregated snapshots (JSONL log or a live server's ``metrics`` op)
and exits non-zero when any target is violated.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .core import quantile_from_snapshot

__all__ = ["SLOResult", "evaluate_slos", "load_config", "render_slo_report"]


class SLOResult:
    """Outcome of one target: observed value vs. bound."""

    __slots__ = ("name", "ok", "observed", "bound", "kind", "detail")

    def __init__(self, name: str, ok: bool, observed: Optional[float],
                 bound: str, kind: str, detail: str = "") -> None:
        self.name = name
        self.ok = ok
        self.observed = observed
        self.bound = bound
        self.kind = kind
        self.detail = detail

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "observed": self.observed,
                "bound": self.bound, "kind": self.kind, "detail": self.detail}


def load_config(path: str) -> List[Dict[str, Any]]:
    with open(path, encoding="utf-8") as fh:
        config = json.load(fh)
    targets = config.get("slos") if isinstance(config, dict) else config
    if not isinstance(targets, list):
        raise ValueError(f"SLO config {path!r} must be a JSON object with an "
                         f"'slos' list (or a bare list of targets)")
    return targets


def _counter_sum(counters: Dict[str, float],
                 names: Union[str, Sequence[str]]) -> float:
    if isinstance(names, str):
        names = [names]
    return float(sum(counters.get(name, 0.0) for name in names))


def _check_bounds(target: Dict[str, Any],
                  observed: Optional[float]) -> Tuple[bool, str]:
    parts = []
    ok = True
    if "max" in target:
        parts.append(f"<= {target['max']}")
        if observed is not None and observed > float(target["max"]):
            ok = False
    if "min" in target:
        parts.append(f">= {target['min']}")
        if observed is not None and observed < float(target["min"]):
            ok = False
    if observed is None and target.get("require"):
        ok = False
        parts.append("(required)")
    return ok, " and ".join(parts) or "(no bound)"


def evaluate_slos(aggregated: Dict[str, Any],
                  targets: List[Dict[str, Any]]) -> List[SLOResult]:
    """Evaluate every target against an ``aggregate()``d snapshot view
    (the merged cross-process dashboard data)."""
    counters = aggregated.get("counters") or {}
    histograms = aggregated.get("histograms") or {}
    results: List[SLOResult] = []
    for target in targets:
        if "metric" in target:
            name = target.get("name") or target["metric"]
            q = float(target.get("quantile", 0.99))
            snap = histograms.get(target["metric"])
            observed = (quantile_from_snapshot(snap, q)
                        if snap is not None else None)
            ok, bound = _check_bounds(target, observed)
            detail = (f"p{int(q * 100)} of {target['metric']}"
                      if snap is not None else
                      f"{target['metric']}: no samples")
            results.append(SLOResult(name, ok, observed, bound,
                                     "latency", detail))
        elif "ratio" in target:
            num, den = target["ratio"]
            name = target.get("name") or f"ratio({num}/{den})"
            denominator = _counter_sum(counters, den)
            numerator = _counter_sum(counters, num)
            observed = (numerator / denominator) if denominator else 0.0
            ok, bound = _check_bounds(target, observed)
            results.append(SLOResult(
                name, ok, observed, bound, "ratio",
                f"{numerator:g} / {denominator:g}"))
        elif "counter" in target:
            name = target.get("name") or target["counter"]
            observed = float(counters.get(target["counter"], 0.0))
            ok, bound = _check_bounds(target, observed)
            results.append(SLOResult(name, ok, observed, bound, "counter",
                                     target["counter"]))
        else:
            results.append(SLOResult(
                str(target.get("name", target)), False, None, "(invalid)",
                "invalid", "target needs one of: metric, ratio, counter"))
    return results


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.6g}"


def render_slo_report(results: List[SLOResult]) -> str:
    if not results:
        return "(no SLO targets configured)"
    width = max(len(r.name) for r in results)
    lines = []
    for r in results:
        status = "OK  " if r.ok else "FAIL"
        lines.append(f"{status} {r.name:<{width}}  observed={_fmt(r.observed)}"
                     f"  target {r.bound}  [{r.detail}]")
    violated = sum(1 for r in results if not r.ok)
    lines.append(f"{len(results) - violated}/{len(results)} SLO target(s) met")
    return "\n".join(lines)
