"""HLSToolchain — the façade tying compiler, HLS backend and profiler
together; the "simulator" the RL environment and all search baselines
call into.

A toolchain owns the pass registry, a profiler configuration, and a
sample counter (the paper's key efficiency metric is *samples per
program* = number of simulator invocations). Modules mutate in place when
passes run, so the toolchain also provides deep-copy snapshots via the
serializer-free :func:`clone_module`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .hls.delays import HLSConstraints
from .hls.profiler import CycleProfiler, CycleReport, HLSCompilationError
from .ir.cloning import clone_blocks
from .ir.module import Function, Module
from .ir.values import GlobalVariable
from .passes import PassManager, create_pass_by_index, pass_name_for_index
from .passes.pipelines import O3_PIPELINE
from .passes.registry import NUM_ACTIONS, TERMINATE_INDEX

__all__ = ["clone_module", "HLSToolchain"]


def clone_module(module: Module) -> Module:
    """Deep-copy a module (globals, functions, bodies)."""
    new = Module(module.source_name)
    new.metadata = dict(module.metadata)
    vmap: Dict = {}
    for gv in module.globals.values():
        init = gv.initializer
        if isinstance(init, list):
            init = list(init)
        g2 = GlobalVariable(gv.name, gv.value_type, init, gv.is_constant, gv.linkage)
        new.add_global(g2)
        vmap[gv] = g2
    # Create empty function shells first so calls can be remapped.
    for func in module.functions.values():
        f2 = Function(func.name, func.ftype, [a.name for a in func.args], func.linkage)
        f2.attributes = set(func.attributes)
        f2.metadata = dict(func.metadata)
        new.add_function(f2)
        vmap[func] = f2
        for a_old, a_new in zip(func.args, f2.args):
            vmap[a_old] = a_new
    for func in module.functions.values():
        f2 = vmap[func]
        if func.is_declaration:
            continue
        blocks, _ = clone_blocks(func.blocks, f2, dict(vmap), suffix="")
        # Retarget direct calls to the cloned functions.
        for bb in blocks:
            for inst in bb.instructions:
                callee = getattr(inst, "callee", None)
                if callee is not None and not isinstance(callee, str) and callee in vmap:
                    inst.callee = vmap[callee]
    return new


class HLSToolchain:
    """Compile-and-profile service with sample accounting."""

    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 max_steps: int = 1_000_000) -> None:
        self.profiler = CycleProfiler(constraints, max_steps=max_steps)
        self.samples_taken = 0

    # -- pass application ---------------------------------------------------
    @staticmethod
    def apply_passes(module: Module, actions: Sequence[Union[int, str]]) -> Module:
        """Apply a pass sequence in place (indices or Table-1 names).

        A ``-terminate`` action ends the sequence early, mirroring the RL
        environment's semantics.
        """
        pm = PassManager()
        for action in actions:
            if isinstance(action, int):
                if action == TERMINATE_INDEX:
                    break
                pm.run(module, [pass_name_for_index(action)])
            else:
                if action == "-terminate":
                    break
                pm.run(module, [action])
        return module

    def o3_sequence(self) -> List[str]:
        return list(O3_PIPELINE)

    # -- profiling -----------------------------------------------------------
    def profile(self, module: Module, entry: str = "main") -> CycleReport:
        self.samples_taken += 1
        return self.profiler.profile(module, entry)

    def cycle_count(self, module: Module, entry: str = "main") -> int:
        return self.profile(module, entry).cycles

    def cycle_count_with_passes(self, module: Module,
                                actions: Sequence[Union[int, str]],
                                entry: str = "main") -> int:
        """Clone, optimize, profile — the one-shot evaluation primitive
        used by every black-box search baseline."""
        candidate = clone_module(module)
        self.apply_passes(candidate, actions)
        return self.cycle_count(candidate, entry)

    def o0_cycles(self, module: Module) -> int:
        return self.cycle_count_with_passes(module, [])

    def o3_cycles(self, module: Module) -> int:
        return self.cycle_count_with_passes(module, self.o3_sequence())

    # -- alternative objectives (§5.1: "the reward could be defined as the
    # negative of the area ... possible to co-optimize multiple objectives")
    def area_score(self, module: Module) -> float:
        from .hls.area import AreaEstimator

        estimator = AreaEstimator(self.profiler.scheduler.constraints)
        return estimator.estimate(module).score

    def objective_value(self, module: Module, objective: str = "cycles",
                        area_weight: float = 0.05, entry: str = "main") -> float:
        """Scalar minimized by the agent: 'cycles', 'area', or 'cycles-area'
        (a weighted co-optimization of both)."""
        if objective == "cycles":
            return float(self.cycle_count(module, entry))
        if objective == "area":
            self.samples_taken += 1
            return self.area_score(module)
        if objective == "cycles-area":
            cycles = float(self.cycle_count(module, entry))
            return cycles + area_weight * self.area_score(module)
        raise ValueError(f"unknown objective {objective!r}")

    def reset_sample_counter(self) -> int:
        taken, self.samples_taken = self.samples_taken, 0
        return taken
