"""HLSToolchain — the façade tying compiler, HLS backend and profiler
together; the "simulator" the RL environment and all search baselines
call into.

A toolchain owns the pass registry, a profiler configuration, a sample
counter (the paper's key efficiency metric is *samples per program* =
number of simulator invocations), and an :class:`~repro.engine.EvaluationEngine`
that memoizes sequence evaluations behind it. Modules mutate in place when
passes run, so the toolchain also provides deep-copy snapshots via the
serializer-free :func:`clone_module` (re-exported from
:mod:`repro.ir.cloning`).

Sample accounting: ``samples_taken`` counts true simulator invocations
(:meth:`profile` / area scoring). Engine cache hits answer without
touching the simulator and therefore do not count — cache statistics are
reported separately through ``toolchain.engine.cache_info()``.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Union

from .engine.core import EvaluationEngine
from .hls.delays import HLSConstraints
from .hls.profiler import CycleProfiler, CycleReport, HLSCompilationError
from .ir.cloning import clone_module
from .ir.module import Module
from .passes import PassManager, pass_name_for_index
from .passes.pipelines import O3_PIPELINE
from .passes.registry import TERMINATE_INDEX

__all__ = ["clone_module", "HLSToolchain"]


class HLSToolchain:
    """Compile-and-profile service with sample accounting.

    ``backend`` selects the evaluation layer behind
    :meth:`cycle_count_with_passes` and ``toolchain.engine``:

    - ``"engine"`` (default): the in-process :class:`EvaluationEngine`.
    - ``"service"``: a sharded multi-process
      :class:`~repro.service.client.EvaluationClient` with a persistent
      cross-run result store — same duck-typed surface, so every
      engine-aware caller opts in without code changes. Knobs ride in
      ``service_config`` (``workers``, ``store_dir``, ``engine_config``).
    - ``"none"``: no caching layer at all.

    ``REPRO_EVAL_BACKEND`` supplies the default, so whole experiment
    drivers switch backends from the environment. ``use_engine=False``
    (the benchmarks' uncached baseline) always forces ``"none"`` and
    restores the seed behaviour — one full clone + pass application +
    profile per evaluation.
    """

    # Live toolchains, so CLI drivers can aggregate cache statistics over
    # every instance an experiment created internally. Instances retire
    # their counters into _retired_cache_totals when closed or collected
    # (the toolchain↔engine reference cycle makes driver-internal
    # toolchains cyclic garbage, so liveness alone is gc-timing-dependent).
    _instances: "weakref.WeakSet[HLSToolchain]" = weakref.WeakSet()
    _retired_cache_totals: Dict[str, int] = {}
    # gauges (point-in-time sizes, not counters): summing them across
    # toolchains would report e.g. phantom worker processes
    # (kernel/plan cache stats are process-wide singletons reported by
    # every engine's cache_info; summing across toolchains would
    # multiply-count them)
    _NON_ADDITIVE_KEYS = frozenset({
        "workers",
        "kernel_entries", "kernel_hits", "kernel_misses", "kernel_fallbacks",
        "plan_entries", "plan_hits", "plan_misses",
        "batch_runs", "batch_lanes", "batch_executed",
        "batch_dedup_saved", "batch_fallbacks",
        "simd_segments_vectorized", "simd_segments_scalar",
        "simd_guard_fallbacks", "simd_column_ops", "simd_vectorized_ratio",
        "batch_sig_memo_hits", "batch_sig_memo_misses",
    })

    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 max_steps: int = 1_000_000, use_engine: bool = True,
                 engine_config: Optional[dict] = None,
                 backend: Optional[str] = None,
                 service_config: Optional[dict] = None,
                 sim_kernels: Optional[str] = None,
                 sim_batch: Optional[str] = None,
                 sim_simd: Optional[str] = None) -> None:
        if backend is None:
            backend = os.environ.get("REPRO_EVAL_BACKEND") or "engine"
        if not use_engine:
            backend = "none"
        if backend not in ("engine", "service", "none"):
            raise ValueError(f"unknown backend {backend!r}; "
                             "choose 'engine', 'service' or 'none'")
        self.backend = backend
        # sim_kernels: off | on | verify (None -> REPRO_SIM_KERNELS, default
        # "on"). Deliberately NOT part of the toolchain fingerprint or any
        # cache key — backends are bit-identical by contract.
        # sim_batch mirrors the same contract for the data-parallel batch
        # executor behind profile_batch (None -> REPRO_SIM_BATCH).
        self.profiler = CycleProfiler(
            constraints, max_steps=max_steps,
            schedule_cache_size=0 if backend == "none" else 512,
            sim_kernels=sim_kernels, sim_batch=sim_batch, sim_simd=sim_simd)
        self.samples_taken = 0
        # The engine's batch API profiles from worker threads; a bare
        # ``+= 1`` would drop increments under that interleaving.
        self._sample_lock = threading.Lock()
        if backend == "service":
            from .service.client import EvaluationClient

            self.engine = EvaluationClient(self, **(service_config or {}))
        elif backend == "engine":
            self.engine = EvaluationEngine(self, **(engine_config or {}))
        else:
            self.engine = None
        self._retired = False
        HLSToolchain._instances.add(self)

    def _count_sample(self) -> None:
        self._count_samples(1)

    def _count_samples(self, n: int) -> None:
        """Credit ``n`` true simulator invocations (service workers report
        theirs back so cross-process accounting stays exact)."""
        with self._sample_lock:
            self.samples_taken += n

    # -- pass application ---------------------------------------------------
    @staticmethod
    def apply_passes(module: Module, actions: Sequence[Union[int, str]]) -> Module:
        """Apply a pass sequence in place (indices or Table-1 names).

        A ``-terminate`` action ends the sequence early, mirroring the RL
        environment's semantics.
        """
        pm = PassManager()
        for action in actions:
            if isinstance(action, int):
                if action == TERMINATE_INDEX:
                    break
                pm.run(module, [pass_name_for_index(action)])
            else:
                if action == "-terminate":
                    break
                pm.run(module, [action])
        return module

    def o3_sequence(self) -> List[str]:
        return list(O3_PIPELINE)

    # -- profiling -----------------------------------------------------------
    def profile(self, module: Module, entry: str = "main") -> CycleReport:
        self._count_sample()
        return self.profiler.profile(module, entry)

    def cycle_count(self, module: Module, entry: str = "main") -> int:
        return self.profile(module, entry).cycles

    def profile_batch(self, modules: Sequence[Module],
                      entry: str = "main") -> List[object]:
        """Profile a wave of modules through the data-parallel batch
        executor. Each entry is a :class:`CycleReport` or the exception
        that lane failed with; every lane costs exactly one simulator
        sample, same as a serial :meth:`profile` loop."""
        self._count_samples(len(modules))
        return self.profiler.profile_batch(list(modules), entry)

    def objective_values_batch(self, modules: Sequence[Module],
                               objective: str = "cycles",
                               area_weight: float = 0.05,
                               entry: str = "main") -> List[object]:
        """Batched :meth:`objective_value` for the cycle-based objectives:
        one float (or per-lane exception) per module, with sample
        accounting identical to the serial path ('cycles-area' adds the
        area term without an extra sample)."""
        if objective not in ("cycles", "cycles-area"):
            raise ValueError(
                f"objective {objective!r} has no batched evaluation path")
        reports = self.profile_batch(modules, entry)
        values: List[object] = []
        for module, report in zip(modules, reports):
            if isinstance(report, BaseException):
                values.append(report)
            elif objective == "cycles":
                values.append(float(report.cycles))
            else:
                values.append(float(report.cycles)
                              + area_weight * self.area_score(module))
        return values

    def cycle_count_with_passes(self, module: Module,
                                actions: Sequence[Union[int, str]],
                                entry: str = "main") -> int:
        """Clone, optimize, profile — the one-shot evaluation primitive
        used by every black-box search baseline. Engine-backed: repeated
        and prefix-sharing sequences hit the memo/trie instead of paying
        a full simulator round trip."""
        if self.engine is not None:
            return int(self.engine.evaluate(module, actions, objective="cycles",
                                            entry=entry))
        candidate = clone_module(module)
        self.apply_passes(candidate, actions)
        return self.cycle_count(candidate, entry)

    def features_after(self, module: Module,
                       actions: Sequence[Union[int, str]] = ()) -> "np.ndarray":
        """Table-2 feature vector of ``module`` after ``actions`` — the
        observation-function primitive, engine-backed like
        :meth:`cycle_count_with_passes`: warm sequences answer from the
        feature memo (or the service's persistent records) without
        materializing a module, and nothing here ever costs a simulator
        sample."""
        if self.engine is not None:
            return self.engine.features_after(module, actions)
        from .features.extractor import features_for

        candidate = clone_module(module)
        self.apply_passes(candidate, actions)
        return features_for(candidate)

    def o0_cycles(self, module: Module) -> int:
        return self.cycle_count_with_passes(module, [])

    def o3_cycles(self, module: Module) -> int:
        return self.cycle_count_with_passes(module, self.o3_sequence())

    # -- alternative objectives (§5.1: "the reward could be defined as the
    # negative of the area ... possible to co-optimize multiple objectives")
    def area_score(self, module: Module) -> float:
        from .hls.area import AreaEstimator

        estimator = AreaEstimator(self.profiler.scheduler.constraints)
        return estimator.estimate(module).score

    def objective_value(self, module: Module, objective: str = "cycles",
                        area_weight: float = 0.05, entry: str = "main") -> float:
        """Scalar minimized by the agent: 'cycles', 'area', or 'cycles-area'
        (a weighted co-optimization of both)."""
        if objective == "cycles":
            return float(self.cycle_count(module, entry))
        if objective == "area":
            self._count_sample()
            return self.area_score(module)
        if objective == "cycles-area":
            cycles = float(self.cycle_count(module, entry))
            return cycles + area_weight * self.area_score(module)
        raise ValueError(f"unknown objective {objective!r}")

    def reset_sample_counter(self) -> int:
        taken, self.samples_taken = self.samples_taken, 0
        return taken

    # -- cache introspection / lifecycle -------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """The backing engine/service cache statistics (hits, misses, trie
        size, evictions, ...); empty when caching is disabled."""
        return self.engine.cache_info() if self.engine is not None else {}

    @classmethod
    def aggregate_cache_info(cls) -> Dict[str, int]:
        """Summed :meth:`cache_info` over every toolchain this process
        created — the experiment drivers construct toolchains internally
        (one per RL agent, one per driver), so per-run reporting
        aggregates here. Covers both live instances and ones already
        retired (closed or garbage-collected)."""
        total: Dict[str, int] = dict(cls._retired_cache_totals)
        for toolchain in list(cls._instances):
            if toolchain._retired:
                continue
            cls._fold(total, toolchain.cache_info())
        return total

    @classmethod
    def _fold(cls, total: Dict[str, int], info: Dict) -> None:
        for key, value in info.items():
            if key in cls._NON_ADDITIVE_KEYS or not isinstance(value, (int, float)):
                continue
            total[key] = total.get(key, 0) + value

    def _retire(self) -> None:
        """Fold this instance's counters into the class-level totals
        (idempotent), so aggregation survives garbage collection."""
        if self._retired:
            return
        self._retired = True
        try:
            try:
                # service backend: skip the worker stats round-trip — this
                # runs from __del__/gc, where stalling on a busy worker's
                # request queue is unacceptable
                info = self.engine.cache_info(include_workers=False)
            except TypeError:  # plain engine: no such knob
                info = self.cache_info()
        except Exception:  # torn-down service backend mid-interpreter-exit
            return
        HLSToolchain._fold(HLSToolchain._retired_cache_totals, info)

    def __del__(self) -> None:
        try:
            self._retire()
        except Exception:
            pass

    def close(self) -> None:
        """Retire cache statistics and release backend resources
        (service worker processes); safe to call more than once."""
        self._retire()
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
