"""HLSToolchain — the façade tying compiler, HLS backend and profiler
together; the "simulator" the RL environment and all search baselines
call into.

A toolchain owns the pass registry, a profiler configuration, a sample
counter (the paper's key efficiency metric is *samples per program* =
number of simulator invocations), and an :class:`~repro.engine.EvaluationEngine`
that memoizes sequence evaluations behind it. Modules mutate in place when
passes run, so the toolchain also provides deep-copy snapshots via the
serializer-free :func:`clone_module` (re-exported from
:mod:`repro.ir.cloning`).

Sample accounting: ``samples_taken`` counts true simulator invocations
(:meth:`profile` / area scoring). Engine cache hits answer without
touching the simulator and therefore do not count — cache statistics are
reported separately through ``toolchain.engine.cache_info()``.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Union

from .engine.core import EvaluationEngine
from .hls.delays import HLSConstraints
from .hls.profiler import CycleProfiler, CycleReport, HLSCompilationError
from .ir.cloning import clone_module
from .ir.module import Module
from .passes import PassManager, pass_name_for_index
from .passes.pipelines import O3_PIPELINE
from .passes.registry import TERMINATE_INDEX

__all__ = ["clone_module", "HLSToolchain"]


class HLSToolchain:
    """Compile-and-profile service with sample accounting.

    ``use_engine=False`` disables every engine cache and restores the
    seed behaviour (one full clone + pass application + profile per
    evaluation) — benchmarks use it as the uncached baseline.
    """

    def __init__(self, constraints: Optional[HLSConstraints] = None,
                 max_steps: int = 1_000_000, use_engine: bool = True,
                 engine_config: Optional[dict] = None) -> None:
        self.profiler = CycleProfiler(
            constraints, max_steps=max_steps,
            schedule_cache_size=512 if use_engine else 0)
        self.samples_taken = 0
        # The engine's batch API profiles from worker threads; a bare
        # ``+= 1`` would drop increments under that interleaving.
        self._sample_lock = threading.Lock()
        self.engine: Optional[EvaluationEngine] = (
            EvaluationEngine(self, **(engine_config or {})) if use_engine else None)

    def _count_sample(self) -> None:
        with self._sample_lock:
            self.samples_taken += 1

    # -- pass application ---------------------------------------------------
    @staticmethod
    def apply_passes(module: Module, actions: Sequence[Union[int, str]]) -> Module:
        """Apply a pass sequence in place (indices or Table-1 names).

        A ``-terminate`` action ends the sequence early, mirroring the RL
        environment's semantics.
        """
        pm = PassManager()
        for action in actions:
            if isinstance(action, int):
                if action == TERMINATE_INDEX:
                    break
                pm.run(module, [pass_name_for_index(action)])
            else:
                if action == "-terminate":
                    break
                pm.run(module, [action])
        return module

    def o3_sequence(self) -> List[str]:
        return list(O3_PIPELINE)

    # -- profiling -----------------------------------------------------------
    def profile(self, module: Module, entry: str = "main") -> CycleReport:
        self._count_sample()
        return self.profiler.profile(module, entry)

    def cycle_count(self, module: Module, entry: str = "main") -> int:
        return self.profile(module, entry).cycles

    def cycle_count_with_passes(self, module: Module,
                                actions: Sequence[Union[int, str]],
                                entry: str = "main") -> int:
        """Clone, optimize, profile — the one-shot evaluation primitive
        used by every black-box search baseline. Engine-backed: repeated
        and prefix-sharing sequences hit the memo/trie instead of paying
        a full simulator round trip."""
        if self.engine is not None:
            return int(self.engine.evaluate(module, actions, objective="cycles",
                                            entry=entry))
        candidate = clone_module(module)
        self.apply_passes(candidate, actions)
        return self.cycle_count(candidate, entry)

    def o0_cycles(self, module: Module) -> int:
        return self.cycle_count_with_passes(module, [])

    def o3_cycles(self, module: Module) -> int:
        return self.cycle_count_with_passes(module, self.o3_sequence())

    # -- alternative objectives (§5.1: "the reward could be defined as the
    # negative of the area ... possible to co-optimize multiple objectives")
    def area_score(self, module: Module) -> float:
        from .hls.area import AreaEstimator

        estimator = AreaEstimator(self.profiler.scheduler.constraints)
        return estimator.estimate(module).score

    def objective_value(self, module: Module, objective: str = "cycles",
                        area_weight: float = 0.05, entry: str = "main") -> float:
        """Scalar minimized by the agent: 'cycles', 'area', or 'cycles-area'
        (a weighted co-optimization of both)."""
        if objective == "cycles":
            return float(self.cycle_count(module, entry))
        if objective == "area":
            self._count_sample()
            return self.area_score(module)
        if objective == "cycles-area":
            cycles = float(self.cycle_count(module, entry))
            return cycles + area_weight * self.area_score(module)
        raise ValueError(f"unknown objective {objective!r}")

    def reset_sample_counter(self) -> int:
        taken, self.samples_taken = self.samples_taken, 0
        return taken
