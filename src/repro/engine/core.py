"""The EvaluationEngine — the single evaluation primitive of the repro.

Wraps an :class:`~repro.toolchain.HLSToolchain` with four cache layers
(result memo, feature memo, prefix-trie snapshots, and — inside the
profiler — incremental scheduling) plus a ``concurrent.futures`` batch
API. See the package docstring for the cache-key/invalidation contract.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry as tm
from ..features.extractor import features_for
from ..hls.profiler import HLSCompilationError, StepBudgetError
from ..ir.cloning import clone_module
from ..ir.module import Module
from ..passes import PassManager
from ..passes.registry import TERMINATE_INDEX, pass_name_for_index
from .memo import FAILED, FAILED_BUDGET, EngineStats, ResultMemo
from .trie import NodeBudget, PrefixTrie, SnapshotLRU

__all__ = ["EvaluationEngine", "BatchEvaluationError", "canonicalize_sequence"]

Action = Union[int, str]
Element = Union[int, str]


class BatchEvaluationError(RuntimeError):
    """A batch worker crashed evaluating ``sequence``.

    Distinct from an :class:`HLSCompilationError` memo (a *legitimate*
    failing sequence, reported as ``None`` in batch results): this wraps
    an unexpected exception — a pass bug, a profiler crash — and carries
    the offending sequence so a failed candidate is debuggable instead of
    vanishing into a bare traceback from the pool.
    """

    def __init__(self, sequence: Sequence[Element], original: BaseException) -> None:
        super().__init__(
            f"evaluating sequence {tuple(sequence)!r} raised "
            f"{type(original).__name__}: {original}")
        self.sequence = tuple(sequence)
        self.original = original


def _cached_failure(cached, canonical) -> Optional[HLSCompilationError]:
    """The exception a failure-sentinel memo entry stands for, if any."""
    if cached is FAILED:
        return HLSCompilationError(
            f"sequence {canonical!r} is memoized as failing HLS compilation")
    if cached is FAILED_BUDGET:
        return StepBudgetError(
            f"sequence {canonical!r} is memoized as exceeding the "
            f"simulation step budget")
    return None


def canonicalize_sequence(actions: Sequence[Action]) -> Tuple[Element, ...]:
    """Terminate-truncate and index-normalize a pass sequence.

    Integer actions stay integers (``-terminate``'s index ends the
    sequence, mirroring the RL environment); Table-1 names collapse onto
    their first table index so name- and index-addressed evaluations share
    cache entries. Names outside the table are kept verbatim.
    """
    from ..passes.registry import PASS_TABLE

    out: List[Element] = []
    for action in actions:
        if isinstance(action, str):
            if action == "-terminate":
                break
            try:
                out.append(PASS_TABLE.index(action))
            except ValueError:
                out.append(action)
        else:
            index = int(action)
            if index == TERMINATE_INDEX:
                break
            out.append(index)
    return tuple(out)


class _ProgramState:
    __slots__ = ("program", "trie")

    def __init__(self, program: Module, lru: SnapshotLRU, min_visits: int,
                 budget: NodeBudget) -> None:
        self.program = program
        self.trie = PrefixTrie(program, lru, min_visits, budget)


class EvaluationEngine:
    """Memoized, prefix-sharing, batchable sequence evaluation.

    Parameters
    ----------
    toolchain:         the HLSToolchain doing the actual compile/profile
                       work (also the sample-accounting authority).
    max_trie_nodes:    engine-wide bound on cached module snapshots.
    max_memo_entries:  bound on memoized (sequence → objective) results.
    snapshot_min_visits: how often a prefix must be walked before its
                       snapshot is worth storing (1 = always).
    snapshot_stride:   snapshots are stored only at every ``stride``-th
                       prefix depth (plus the full-sequence node), so one
                       long materialization doesn't pay a module clone
                       per pass applied.
    max_workers:       thread-pool width for :meth:`evaluate_batch`
                       (``REPRO_ENGINE_WORKERS`` overrides; ≤1 = serial).
    """

    def __init__(self, toolchain, max_trie_nodes: int = 256,
                 max_memo_entries: int = 8192,
                 snapshot_min_visits: int = 2,
                 snapshot_stride: int = 8,
                 max_workers: Optional[int] = None) -> None:
        self.toolchain = toolchain
        if max_workers is None:
            try:
                max_workers = int(os.environ.get("REPRO_ENGINE_WORKERS", ""))
            except ValueError:
                max_workers = min(4, os.cpu_count() or 1)
        self.max_workers = max(1, max_workers)
        self.snapshot_min_visits = snapshot_min_visits
        self.snapshot_stride = max(1, snapshot_stride)
        self.stats = EngineStats()
        self._memo = ResultMemo(max_memo_entries)
        # (id(program), canonical sequence) -> read-only feature vector;
        # objective-independent, so 'cycles' and 'area' queries share it.
        self._feature_memo = ResultMemo(max_memo_entries)
        self._lru = SnapshotLRU(max_trie_nodes)
        # Structure nodes are ~two orders of magnitude lighter than module
        # snapshots; 64 nodes of bookkeeping per allowed snapshot keeps the
        # tries bounded without starving prefix tracking.
        self._node_budget = NodeBudget(max_trie_nodes * 64)
        self._programs: Dict[int, _ProgramState] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    # -- program registry ---------------------------------------------------
    def _state_for(self, program: Module) -> _ProgramState:
        with self._lock:
            state = self._programs.get(id(program))
            if state is None:
                state = _ProgramState(program, self._lru, self.snapshot_min_visits,
                                      self._node_budget)
                self._programs[id(program)] = state
            return state

    @staticmethod
    def _key(program: Module, canonical: Tuple[Element, ...], objective: str,
             area_weight: float, entry: str) -> Tuple:
        return (id(program), canonical, objective, area_weight, entry)

    # -- single evaluation --------------------------------------------------
    def evaluate(self, program: Module, actions: Sequence[Action],
                 objective: str = "cycles", area_weight: float = 0.05,
                 entry: str = "main") -> float:
        """Objective value of ``program`` after ``actions``. Memo hits do
        not touch the toolchain (no simulator sample); misses clone from
        the deepest cached prefix and pay only the suffix."""
        with tm.span("engine.evaluate"):
            value, _, _ = self._evaluate(program, actions, objective,
                                         area_weight, entry, want_module=False)
        return value

    def evaluate_with_module(self, program: Module, actions: Sequence[Action],
                             objective: str = "cycles", area_weight: float = 0.05,
                             entry: str = "main") -> Tuple[float, Module]:
        """Like :meth:`evaluate` but also materializes (and returns) the
        optimized module — callers may mutate it freely."""
        value, module, _ = self._evaluate(program, actions, objective,
                                          area_weight, entry, want_module=True)
        return value, module

    def _memoize_failure(self, key: Tuple, exc: HLSCompilationError) -> None:
        with self._lock:
            if isinstance(exc, StepBudgetError):
                self._memo.put(key, FAILED_BUDGET)
                self.stats.budget_failures_memoized += 1
            else:
                self._memo.put(key, FAILED)
                self.stats.failures_memoized += 1

    def _evaluate(self, program: Module, actions: Sequence[Action],
                  objective: str, area_weight: float, entry: str,
                  want_module: bool, want_features: bool = False
                  ) -> Tuple[float, Optional[Module], Optional[np.ndarray]]:
        canonical = canonicalize_sequence(actions)
        key = self._key(program, canonical, objective, area_weight, entry)
        feats: Optional[np.ndarray] = None
        with tm.span("engine.memo_lookup"), self._lock:
            cached = self._memo.get(key)
            if cached is not None:
                self.stats.memo_hits += 1
            if want_features and canonical:
                feats = self._feature_memo.get((id(program), canonical))
                if feats is not None:
                    self.stats.feature_hits += 1
        tm.count("engine.memo_hits" if cached is not None
                 else "engine.memo_misses")
        if want_features and not canonical:
            # Base programs handed to the engine are immutable: their
            # features come straight off the shared (module, version) memo.
            feats = features_for(program)
        failure = _cached_failure(cached, canonical)
        if failure is not None:
            raise failure
        if cached is not None and not want_module and \
                (not want_features or feats is not None):
            return cached, None, feats

        state = self._state_for(program)
        try:
            module = self._materialize(state, canonical)
        except HLSCompilationError as exc:
            self._memoize_failure(key, exc)
            raise
        if want_features and feats is None:
            # Memoized before the profile attempt, so even a sequence
            # that fails HLS compilation leaves its features behind for
            # a later sample-free features_after.
            feats = self._memoize_features(program, canonical, module)
        if cached is not None:
            return cached, module, feats

        with self._lock:
            self.stats.memo_misses += 1
        try:
            with tm.span("engine.profile", objective=objective):
                value = self.toolchain.objective_value(module, objective,
                                                       area_weight=area_weight,
                                                       entry=entry)
        except HLSCompilationError as exc:
            self._memoize_failure(key, exc)
            raise
        with self._lock:
            self._memo.put(key, value)
        return value, module, feats

    def evaluate_prepared(self, program: Module, actions: Sequence[Action],
                          module: Module, objective: str = "cycles",
                          area_weight: float = 0.05, entry: str = "main") -> float:
        """Evaluate a module the caller already optimized to ``actions``
        (the incremental RL-environment path: the env applies one pass per
        step to its own working module, so the engine must not re-apply the
        sequence). Memo hits skip profiling; either way the trie learns the
        prefix so black-box searches can reuse RL-explored sequences."""
        canonical = canonicalize_sequence(actions)
        key = self._key(program, canonical, objective, area_weight, entry)
        state = self._state_for(program)
        with self._lock:
            path = state.trie.walk(canonical)
            # only the *full-sequence* node may take this module as its
            # snapshot (the walk can stop short on node-budget exhaustion)
            node = path[-1] if path and len(path) == len(canonical) else None
            want_snap = node is not None and state.trie.want_snapshot(node)
            cached = self._memo.get(key)
            if cached is not None and cached is not FAILED and \
                    cached is not FAILED_BUDGET:
                self.stats.memo_hits += 1
        if want_snap:
            snapshot = clone_module(module)
            with self._lock:
                if state.trie.store_snapshot(node, snapshot):
                    self.stats.snapshots_stored += 1
        failure = _cached_failure(cached, canonical)
        if failure is not None:
            raise failure
        if cached is not None:
            return cached
        with self._lock:
            self.stats.memo_misses += 1
        try:
            with tm.span("engine.profile", objective=objective):
                value = self.toolchain.objective_value(module, objective,
                                                       area_weight=area_weight,
                                                       entry=entry)
        except HLSCompilationError as exc:
            self._memoize_failure(key, exc)
            raise
        with self._lock:
            self._memo.put(key, value)
        return value

    # -- feature queries ------------------------------------------------------
    def _memoize_features(self, program: Module, canonical: Tuple[Element, ...],
                          module: Module) -> np.ndarray:
        feats = features_for(module)
        with self._lock:
            self.stats.feature_misses += 1
            self._feature_memo.put((id(program), canonical), feats)
        return feats

    def features_after(self, program: Module,
                       actions: Sequence[Action] = ()) -> np.ndarray:
        """The 56-feature vector of ``program`` after ``actions`` —
        AutoPhase's observation function as an engine query. Memo hits
        (any sequence whose features were computed before, including by a
        failed evaluation) answer without materializing a module; misses
        clone from the deepest cached prefix, compose the vector from
        per-function cached contributions, and memoize it next to the
        cycle results. Never profiles, never costs a simulator sample.
        The returned array is read-only — copy before mutating."""
        with tm.span("engine.features_after"):
            canonical = canonicalize_sequence(actions)
            if not canonical:
                # Base programs handed to the engine are immutable, so their
                # features come straight off the shared (module, version) memo.
                return features_for(program)
            with self._lock:
                cached = self._feature_memo.get((id(program), canonical))
                if cached is not None:
                    self.stats.feature_hits += 1
            if cached is not None:
                return cached
            module = self._materialize(self._state_for(program), canonical)
            return self._memoize_features(program, canonical, module)

    def evaluate_with_features(self, program: Module, actions: Sequence[Action],
                               objective: str = "cycles",
                               area_weight: float = 0.05,
                               entry: str = "main") -> Tuple[float, np.ndarray]:
        """Objective value *and* feature vector after ``actions``, paying
        at most one materialization for both. Features are memoized
        before the profile attempt, so even a sequence that fails HLS
        compilation leaves its features behind for a sample-free
        :meth:`features_after`."""
        value, _, feats = self._evaluate(program, actions, objective,
                                         area_weight, entry,
                                         want_module=False, want_features=True)
        return value, feats

    # -- batch evaluation ---------------------------------------------------
    def evaluate_batch(
        self, program: Module, sequences: Sequence[Sequence[Action]],
        objective: str = "cycles", area_weight: float = 0.05,
        entry: str = "main", want_features: bool = False,
    ) -> Union[List[Optional[float]],
               List[Tuple[Optional[float], np.ndarray]]]:
        """Score a whole population. Returns one value per input sequence,
        ``None`` where the sequence fails HLS compilation (callers apply
        their own penalty). Duplicate sequences are evaluated once; cache
        misses run on a persistent thread pool.

        With ``want_features=True`` every row becomes a ``(value,
        features)`` pair — the vectorized feature-observation path —
        where ``features`` is always present (materialization succeeds
        even when profiling fails, so failing rows come back as
        ``(None, features)``).

        Results are identical at any worker count. Worker threads trade
        some duplicated work on *cold* shared prefixes (two concurrent
        misses may each apply a prefix the trie would let sequential
        evaluation share) for an asynchronous API; the simulator is pure
        Python, so set ``REPRO_ENGINE_WORKERS=1`` for strictly minimal
        work on a GIL-bound build."""
        self.stats.batches += 1
        tm.observe("engine.batch_size", len(sequences))
        keyed = [canonicalize_sequence(seq) for seq in sequences]
        unique: Dict[Tuple[Element, ...], Optional[float]] = {}
        for canonical in keyed:
            unique.setdefault(canonical, None)

        def run_one(canonical: Tuple[Element, ...]):
            try:
                if want_features:
                    return self.evaluate_with_features(
                        program, canonical, objective=objective,
                        area_weight=area_weight, entry=entry)
                return self.evaluate(program, canonical, objective=objective,
                                     area_weight=area_weight, entry=entry)
            except HLSCompilationError:
                if not want_features:
                    return None
                try:
                    return (None, self.features_after(program, canonical))
                except Exception as exc:
                    return BatchEvaluationError(canonical, exc)
            except Exception as exc:
                # Surface worker crashes with the offending sequence
                # attached (a bare pool traceback is indistinguishable
                # from any other candidate); raised after the scan below.
                return BatchEvaluationError(canonical, exc)

        pending = list(unique)
        with tm.span("engine.evaluate_batch", size=len(pending)):
            if len(pending) > 1 and self._use_grouped(objective):
                self._evaluate_batch_grouped(program, pending, unique,
                                             objective, area_weight, entry,
                                             want_features)
            elif self.max_workers > 1 and len(pending) > 1:
                with self._lock:
                    if self._pool is None:  # persistent: one pool per engine
                        self._pool = ThreadPoolExecutor(
                            max_workers=self.max_workers,
                            thread_name_prefix="repro-engine")
                    pool = self._pool
                # Trace context is thread-local; hand the batch span's
                # trace id to the pool threads so per-candidate spans
                # stay inside the caller's trace instead of minting one
                # trace per pool thread. ``ctx`` is None outside trace
                # mode, and attach is then a no-op.
                ctx = tm.current_trace()

                def run_traced(canonical):
                    with tm.attach_trace(ctx):
                        return run_one(canonical)

                for canonical, value in zip(pending,
                                            pool.map(run_traced, pending)):
                    unique[canonical] = value
            else:
                for canonical in pending:
                    unique[canonical] = run_one(canonical)
        for value in unique.values():
            if isinstance(value, BatchEvaluationError):
                raise value from value.original
        return [unique[canonical] for canonical in keyed]

    def _use_grouped(self, objective: str) -> bool:
        """Whether cache misses of a batch should be profiled as one
        data-parallel wave (``REPRO_SIM_BATCH`` on the toolchain's
        profiler) instead of per-sequence on the thread pool."""
        profiler = getattr(self.toolchain, "profiler", None)
        return (objective in ("cycles", "cycles-area")
                and getattr(profiler, "sim_batch", "off") != "off"
                and hasattr(self.toolchain, "objective_values_batch"))

    def _evaluate_batch_grouped(
        self, program: Module, pending: List[Tuple[Element, ...]],
        unique: Dict, objective: str, area_weight: float, entry: str,
        want_features: bool,
    ) -> None:
        """The grouped miss path: memo/feature lookups and materialization
        run per sequence with semantics identical to :meth:`_evaluate`
        (same statistics, same failure memoization), then every module
        that actually needs the simulator is profiled as ONE
        ``objective_values_batch`` wave through the batch executor, which
        dedups execution-equivalent candidates and runs shared kernels
        lock-step."""
        state = self._state_for(program)
        to_profile: List[Tuple] = []  # (canonical, key, module, feats)
        for canonical in pending:
            key = self._key(program, canonical, objective, area_weight, entry)
            feats: Optional[np.ndarray] = None
            with tm.span("engine.memo_lookup"), self._lock:
                cached = self._memo.get(key)
                if cached is not None:
                    self.stats.memo_hits += 1
                if want_features and canonical:
                    feats = self._feature_memo.get((id(program), canonical))
                    if feats is not None:
                        self.stats.feature_hits += 1
            tm.count("engine.memo_hits" if cached is not None
                     else "engine.memo_misses")
            if want_features and not canonical:
                feats = features_for(program)
            failure = _cached_failure(cached, canonical)
            if failure is not None:
                if not want_features:
                    unique[canonical] = None
                    continue
                if feats is None:
                    try:
                        feats = self.features_after(program, canonical)
                    except Exception as exc:
                        unique[canonical] = BatchEvaluationError(canonical, exc)
                        continue
                unique[canonical] = (None, feats)
                continue
            if cached is not None and (not want_features or feats is not None):
                unique[canonical] = (cached, feats) if want_features else cached
                continue
            try:
                module = self._materialize(state, canonical)
            except HLSCompilationError as exc:
                self._memoize_failure(key, exc)
                if want_features:
                    unique[canonical] = BatchEvaluationError(canonical, exc)
                else:
                    unique[canonical] = None
                continue
            except Exception as exc:
                unique[canonical] = BatchEvaluationError(canonical, exc)
                continue
            if want_features and feats is None:
                feats = self._memoize_features(program, canonical, module)
            if cached is not None:
                unique[canonical] = (cached, feats) if want_features else cached
                continue
            with self._lock:
                self.stats.memo_misses += 1
            to_profile.append((canonical, key, module, feats))

        if not to_profile:
            return
        modules = [item[2] for item in to_profile]
        with tm.span("engine.profile_batch", objective=objective,
                     size=len(modules)):
            values = self.toolchain.objective_values_batch(
                modules, objective, area_weight=area_weight, entry=entry)
        for (canonical, key, module, feats), value in zip(to_profile, values):
            if isinstance(value, HLSCompilationError):
                self._memoize_failure(key, value)
                unique[canonical] = (None, feats) if want_features else None
            elif isinstance(value, BaseException):
                unique[canonical] = BatchEvaluationError(canonical, value)
            else:
                with self._lock:
                    self._memo.put(key, value)
                unique[canonical] = (value, feats) if want_features else value

    def memoized_failure(self, program: Module, actions: Sequence[Action],
                         objective: str = "cycles", area_weight: float = 0.05,
                         entry: str = "main") -> Optional[HLSCompilationError]:
        """The exception a memoized failure of this key stands for —
        :class:`StepBudgetError` for step-budget timeouts, plain
        :class:`HLSCompilationError` otherwise, ``None`` when the key is
        not memoized as failing. Lets batch callers (which receive bare
        ``None`` rows) recover which kind of failure was recorded."""
        canonical = canonicalize_sequence(actions)
        key = self._key(program, canonical, objective, area_weight, entry)
        with self._lock:
            cached = self._memo.get(key)
        return _cached_failure(cached, canonical)

    # -- materialization ----------------------------------------------------
    def materialize(self, program: Module, actions: Sequence[Action]) -> Module:
        """A fresh module equal to ``program`` with ``actions`` applied,
        built from the deepest cached prefix (no profiling, no sample)."""
        return self._materialize(self._state_for(program),
                                 canonicalize_sequence(actions))

    def _materialize(self, state: _ProgramState,
                     canonical: Tuple[Element, ...]) -> Module:
        with tm.span("engine.materialize", depth=len(canonical)):
            return self._materialize_inner(state, canonical)

    def _materialize_inner(self, state: _ProgramState,
                           canonical: Tuple[Element, ...]) -> Module:
        trie = state.trie
        with self._lock:
            depth, source = trie.deepest_snapshot(canonical)
            path = trie.walk(canonical)
            if depth > 0:
                self.stats.trie_hits += 1
                self.stats.passes_saved += depth
            # The deepest prefix other evaluations have walked too is the
            # divergence frontier — for population-based searches it is
            # exactly the shared parent prefix, so that is where a
            # snapshot earns its clone. Below it, stride points bound the
            # reapply distance; beyond it the path is (so far) private.
            shared_depth = 0
            for i, node in enumerate(path):
                if node.visits >= self.snapshot_min_visits:
                    shared_depth = i + 1
        module = clone_module(source)
        pm = PassManager()
        for i in range(depth, len(canonical)):
            element = canonical[i]
            name = pass_name_for_index(element) if isinstance(element, int) else element
            with tm.span("engine.pass_apply"):
                pm.run(module, [name])
            d = i + 1
            on_grid = d == shared_depth or (d < shared_depth and d % self.snapshot_stride == 0)
            with self._lock:
                self.stats.passes_applied += 1
                node = path[i] if i < len(path) else None  # budget-truncated walk
                want_snap = node is not None and on_grid and trie.want_snapshot(node)
            if want_snap:
                snapshot = clone_module(module)
                with self._lock:
                    if trie.store_snapshot(node, snapshot):
                        self.stats.snapshots_stored += 1
        return module

    # -- introspection ------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        from ..interp.batch_exec import batch_exec_info
        from ..interp.interpreter import plan_cache_info
        from ..interp.kernels import kernel_cache_info

        info = self.stats.as_dict()
        info["memo_entries"] = len(self._memo)
        info["feature_memo_entries"] = len(self._feature_memo)
        info["snapshot_nodes"] = len(self._lru)
        info["snapshot_evictions"] = self._lru.evictions
        info["trie_nodes"] = self._node_budget.used
        info["programs"] = len(self._programs)
        # process-wide compiled-simulation caches (shared across engines,
        # keyed by the same structural hash as the schedule cache)
        info.update(kernel_cache_info())
        info.update(plan_cache_info())
        info.update(batch_exec_info())
        return info

    def clear(self) -> None:
        """Drop every cached result, snapshot and trie (keeps statistics).
        Also drops the process-wide compiled-kernel and block-plan caches
        (and the batch-executor dedup counters) so a cleared engine
        re-measures a genuinely cold path."""
        from ..interp.batch_exec import clear_batch_exec_stats
        from ..interp.interpreter import clear_plan_cache
        from ..interp.kernels import clear_kernel_cache

        with self._lock:
            self._memo.clear()
            self._feature_memo.clear()
            self._programs.clear()
            self._lru = SnapshotLRU(self._lru.max_nodes)
            self._node_budget = NodeBudget(self._node_budget.max_nodes)
        clear_kernel_cache()
        clear_plan_cache()
        clear_batch_exec_stats()
