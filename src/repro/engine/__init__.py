"""repro.engine — the memoized, prefix-sharing evaluation engine.

Every consumer of "cycles after this pass sequence" — the
:class:`~repro.toolchain.HLSToolchain` façade, the search baselines'
:class:`~repro.search.base.SequenceEvaluator`, and both RL environments —
funnels through one :class:`EvaluationEngine`, which layers three caches
over the compile-and-profile pipeline plus a ``concurrent.futures``
batch API for scoring whole populations.

Cache-key / invalidation contract
=================================

**Result memo.** Key: ``(id(base program), canonical sequence, objective,
area_weight, entry)``, where the canonical sequence is terminate-truncated
(everything at and after ``-terminate`` is dropped) with Table-1 pass
names normalized to their table index — so ``["-mem2reg"]``, ``[38]`` and
``[38, 45, 7]`` all share one entry. Values are objective scalars;
sequences that raise :class:`~repro.hls.profiler.HLSCompilationError` are
memoized under a failure sentinel and re-raise on hit. LRU-bounded by
entry count. A memo hit never touches the toolchain, so it does **not**
increment ``HLSToolchain.samples_taken`` — the paper's samples-per-program
metric counts true simulator invocations only.

**Prefix trie.** Per program, keyed by canonical-sequence prefixes; nodes
promoted to module snapshots after ``snapshot_min_visits`` walks, bounded
engine-wide by snapshot-node count (LRU eviction drops the snapshot, keeps
the node). Snapshots are immutable: the engine clones *from* them and
never applies passes *to* them, so there is nothing to invalidate — but
this relies on callers treating the **base program as immutable** too.
Mutate clones (``repro.ir.clone_module``), never the module you hand to
the engine.

**Feature memo.** Key: ``(id(base program), canonical sequence)`` —
objective-independent, since the Table-2 feature vector depends only on
the optimized module. ``features_after`` / ``evaluate_with_features``
answer hits without materializing anything; misses clone from the
deepest trie snapshot and *compose* the vector from per-function
contributions cached in the process-wide
:func:`repro.features.shared_extractor` (same structural body hash as
the profiler's schedule cache, so only functions a pass actually changed
get re-walked). Feature queries never profile and never count toward
``samples_taken``.

**Profiler caches** (inside :class:`~repro.hls.profiler.CycleProfiler`):
per-function FSM state counts are keyed by a *structural hash* of the
function body (content-addressed — no invalidation needed), and burst-slot
means are keyed by ``(module, Module.version)``. ``Module.version`` is
bumped by the PassManager after every pass, so in-place mutation must go
through a PassManager (as ``HLSToolchain.apply_passes`` does) for the
version key to stay honest.

Engine cache-hit statistics live in ``engine.stats`` /
``engine.cache_info()`` and are reported alongside ``samples_taken``.
"""

from .core import BatchEvaluationError, EvaluationEngine, canonicalize_sequence
from .memo import EngineStats, ResultMemo
from .trie import PrefixTrie, SnapshotLRU

__all__ = ["EvaluationEngine", "BatchEvaluationError", "canonicalize_sequence",
           "EngineStats", "ResultMemo", "PrefixTrie", "SnapshotLRU"]
