"""Result memo and cache-statistics bookkeeping for the evaluation engine."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["EngineStats", "ResultMemo", "FAILED", "FAILED_BUDGET"]

# Sentinel memo value for sequences that raised HLSCompilationError —
# re-evaluating a known-broken sequence must not burn a simulator sample.
FAILED = object()

# Sentinel for sequences that merely exhausted the simulation *step
# budget* (StepBudgetError). Still a failure — re-evaluating would time
# out again — but cache stats must not conflate it with genuine HLS
# compilation failures (traps, scheduling errors).
FAILED_BUDGET = object()


@dataclass
class EngineStats:
    """Cache-hit accounting, reported alongside ``samples_taken``."""

    memo_hits: int = 0
    memo_misses: int = 0
    trie_hits: int = 0            # evaluations that cloned a non-root snapshot
    passes_saved: int = 0         # prefix passes skipped thanks to the trie
    passes_applied: int = 0       # suffix passes actually run
    snapshots_stored: int = 0
    failures_memoized: int = 0
    budget_failures_memoized: int = 0  # step-budget timeouts, not HLS failures
    batches: int = 0
    feature_hits: int = 0         # feature queries answered from the memo
    feature_misses: int = 0       # feature queries that composed a vector

    def as_dict(self) -> Dict[str, int]:
        return {
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "trie_hits": self.trie_hits,
            "passes_saved": self.passes_saved,
            "passes_applied": self.passes_applied,
            "snapshots_stored": self.snapshots_stored,
            "failures_memoized": self.failures_memoized,
            "budget_failures_memoized": self.budget_failures_memoized,
            "batches": self.batches,
            "feature_hits": self.feature_hits,
            "feature_misses": self.feature_misses,
        }

    @property
    def hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0


class ResultMemo:
    """LRU map from evaluation keys to objective values (or FAILED)."""

    _MISSING = object()

    def __init__(self, max_entries: int = 8192) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()

    def get(self, key: Tuple) -> Any:
        """The cached value, FAILED, or None when absent."""
        value = self._entries.get(key, self._MISSING)
        if value is self._MISSING:
            return None
        self._entries.move_to_end(key)
        return value

    def put(self, key: Tuple, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
