"""Prefix-trie module cache.

One trie per registered program. A node at depth ``d`` represents the
canonical pass prefix of length ``d``; it may hold a *snapshot* — a clone
of the program with exactly that prefix applied. Evaluating a sequence
clones from the deepest snapshotted ancestor and applies only the suffix.

Snapshots are immutable once stored (the engine always clones *from*
them, never applies passes *to* them), which is what makes concurrent
readers safe. Storage is bounded engine-wide by :class:`SnapshotLRU`:
node structure (children/visit counters, a few machine words) is kept,
but the least-recently-used snapshots are dropped once the node budget
is exceeded. Nodes are only *promoted* to snapshot once their prefix has
been walked ``min_visits`` times, so one-shot random sequences don't pay
the clone cost of caching prefixes nobody will revisit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from ..ir.module import Module

__all__ = ["PrefixTrie", "SnapshotLRU", "NodeBudget"]

Element = Union[int, str]


class NodeBudget:
    """Engine-wide cap on trie *structure* nodes. Snapshots are bounded by
    :class:`SnapshotLRU`; this bounds the bookkeeping nodes themselves, so
    exploration-heavy workloads (unique 45-pass random sequences, long RL
    runs) cannot grow the tries without limit — once exhausted, walks
    simply stop extending paths and the deep unique tails go untracked."""

    def __init__(self, max_nodes: int) -> None:
        self.max_nodes = max_nodes
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.max_nodes:
            return False
        self.used += 1
        return True


class _TrieNode:
    __slots__ = ("children", "snapshot", "visits")

    def __init__(self) -> None:
        self.children: Dict[Element, "_TrieNode"] = {}
        self.snapshot: Optional[Module] = None
        self.visits = 0


class SnapshotLRU:
    """Engine-wide LRU over snapshot-bearing trie nodes (node-count bound)."""

    def __init__(self, max_nodes: int) -> None:
        self.max_nodes = max_nodes
        self._order: "OrderedDict[_TrieNode, None]" = OrderedDict()
        self.evictions = 0

    def touch(self, node: _TrieNode) -> None:
        if node in self._order:
            self._order.move_to_end(node)

    def add(self, node: _TrieNode) -> None:
        self._order[node] = None
        self._order.move_to_end(node)
        while len(self._order) > self.max_nodes:
            victim, _ = self._order.popitem(last=False)
            victim.snapshot = None
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._order)


class PrefixTrie:
    """Prefix tree of pass-sequence snapshots for one base program."""

    def __init__(self, program: Module, lru: SnapshotLRU, min_visits: int = 2,
                 budget: Optional[NodeBudget] = None) -> None:
        self.program = program
        self.lru = lru
        self.min_visits = min_visits
        self.budget = budget
        self.root = _TrieNode()

    def deepest_snapshot(self, sequence: Tuple[Element, ...]) -> Tuple[int, Module]:
        """(depth, module) of the deepest snapshotted ancestor of
        ``sequence``; depth 0 / the base program when nothing is cached."""
        depth, best = 0, self.program
        node = self.root
        for i, element in enumerate(sequence):
            node = node.children.get(element)
            if node is None:
                break
            if node.snapshot is not None:
                depth, best = i + 1, node.snapshot
                self.lru.touch(node)
        return depth, best

    def walk(self, sequence: Tuple[Element, ...]) -> List[_TrieNode]:
        """Materialize (and visit-count) the node path for every prefix of
        ``sequence``; ``result[i]`` is the node for ``sequence[:i + 1]``.
        May return a *shorter* path than the sequence when the engine-wide
        node budget is exhausted (the untracked tail is simply not cached)."""
        path: List[_TrieNode] = []
        node = self.root
        for element in sequence:
            child = node.children.get(element)
            if child is None:
                if self.budget is not None and not self.budget.take():
                    break
                child = node.children[element] = _TrieNode()
            child.visits += 1
            path.append(child)
            node = child
        return path

    def want_snapshot(self, node: _TrieNode) -> bool:
        return node.snapshot is None and node.visits >= self.min_visits

    def store_snapshot(self, node: _TrieNode, snapshot: Module) -> bool:
        """Install ``snapshot`` unless another thread won the race."""
        if node.snapshot is not None:
            return False
        node.snapshot = snapshot
        self.lru.add(node)
        return True
