"""repro.programs — program sources: the CSmith-style random generator
and the nine CHStone-like benchmarks."""

from . import chstone
from .cbuilder import CWriter
from .chstone import BENCHMARK_NAMES, build, build_all
from .generator import (
    GeneratorConfig,
    RandomProgramGenerator,
    generate_corpus,
    passes_hls_filter,
)

__all__ = [
    "chstone", "CWriter", "BENCHMARK_NAMES", "build", "build_all",
    "GeneratorConfig", "RandomProgramGenerator", "generate_corpus",
    "passes_hls_filter",
]
