"""CWriter — a miniature C-like frontend over the IRBuilder.

Emits IR the way ``clang -O0`` does: every local variable is an alloca in
the entry block, every read is a load and every write a store, loops are
while-shaped (test at the top), and expressions are computed fresh at
each use. This deliberate naivety is the whole point: it leaves exactly
the optimization headroom (mem2reg, licm, rotation, CSE, ...) that the
phase-ordering search is supposed to find, mirroring what LegUp sees from
Clang's -O0 output.

Example::

    m = Module("demo")
    fw = CWriter(m, "main")
    total = fw.local("total")
    with fw.loop("i", 0, 10) as i:
        fw.store_var(total, fw.b.add(fw.load_var(total), i))
    fw.ret(fw.load_var(total))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Union

from ..ir import types as ty
from ..ir.builder import IRBuilder
from ..ir.instructions import AllocaInst, Instruction
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import ConstantInt, GlobalVariable, Value

__all__ = ["CWriter"]

IntLike = Union[int, Value]


class CWriter:
    def __init__(self, module: Module, name: str, return_type: ty.Type = ty.i32,
                 param_types: Sequence[ty.Type] = (), param_names: Sequence[str] = (),
                 linkage: str = "internal") -> None:
        self.module = module
        self.func = Function(name, ty.function_type(return_type, list(param_types)),
                             list(param_names), linkage)
        module.add_function(self.func)
        self.entry = self.func.add_block("entry")
        self.b = IRBuilder(self.entry)
        self._alloca_anchor: Optional[Instruction] = None
        self._block_counter = 0

    # -- small helpers -----------------------------------------------------
    def _value(self, v: IntLike, type_: ty.IntType = ty.i32) -> Value:
        return ConstantInt(type_, v) if isinstance(v, int) else v

    def _new_block(self, hint: str) -> BasicBlock:
        self._block_counter += 1
        return self.func.add_block(f"{hint}{self._block_counter}")

    @property
    def args(self) -> List[Value]:
        return list(self.func.args)

    # -- locals ---------------------------------------------------------------
    def local(self, name: str, type_: ty.Type = ty.i32, init: Optional[IntLike] = None) -> AllocaInst:
        """Declare a local scalar (alloca in the entry block)."""
        alloca = AllocaInst(type_, name)
        if self._alloca_anchor is None:
            self.entry.insert_at_front(alloca)
        else:
            alloca.insert_after(self._alloca_anchor)
        self._alloca_anchor = alloca
        if init is not None:
            self.b.store(self._value(init, type_ if isinstance(type_, ty.IntType) else ty.i32), alloca)
        return alloca

    def local_array(self, name: str, count: int, element: ty.Type = ty.i32) -> AllocaInst:
        alloca = AllocaInst(ty.array_type(element, count), name)
        if self._alloca_anchor is None:
            self.entry.insert_at_front(alloca)
        else:
            alloca.insert_after(self._alloca_anchor)
        self._alloca_anchor = alloca
        return alloca

    def load_var(self, ptr: Value, name: str = "") -> Value:
        return self.b.load(ptr, name)

    def store_var(self, ptr: Value, value: IntLike) -> None:
        self.b.store(self._value(value), ptr)

    # -- arrays -----------------------------------------------------------------
    def index(self, array_ptr: Value, idx: IntLike, name: str = "") -> Value:
        """&array[idx] for pointers-to-array and raw element pointers."""
        idx_v = self._value(idx)
        if array_ptr.type.pointee.is_array:  # type: ignore[union-attr]
            return self.b.gep(array_ptr, [0, idx_v], name)
        return self.b.gep(array_ptr, [idx_v], name)

    def load_elem(self, array_ptr: Value, idx: IntLike, name: str = "") -> Value:
        return self.b.load(self.index(array_ptr, idx), name)

    def store_elem(self, array_ptr: Value, idx: IntLike, value: IntLike) -> None:
        self.b.store(self._value(value), self.index(array_ptr, idx))

    # -- globals -----------------------------------------------------------------
    def global_array(self, name: str, values: Sequence[int],
                     constant: bool = True) -> GlobalVariable:
        gv = GlobalVariable(name, ty.array_type(ty.i32, len(values)),
                            list(values), is_constant=constant)
        self.module.add_global(gv)
        return gv

    # -- control flow -------------------------------------------------------------
    @contextmanager
    def loop(self, var: str, start: IntLike, end: IntLike, step: int = 1):
        """C-style ``for (var = start; var < end; var += step)``.

        Yields the loaded induction value for the body. The loop variable
        lives in an alloca, exactly as Clang -O0 would emit it.
        """
        iv_ptr = self.local(var, ty.i32, None)
        self.b.store(self._value(start), iv_ptr)
        cond_bb = self._new_block(f"{var}.cond")
        body_bb = self._new_block(f"{var}.body")
        exit_bb = self._new_block(f"{var}.end")
        self.b.br(cond_bb)
        self.b.position_at_end(cond_bb)
        iv = self.b.load(iv_ptr, var + ".v")
        pred = "slt" if step > 0 else "sgt"
        cmp = self.b.icmp(pred, iv, self._value(end), var + ".cmp")
        self.b.cbr(cmp, body_bb, exit_bb)
        self.b.position_at_end(body_bb)
        body_iv = self.b.load(iv_ptr, var)
        yield body_iv
        bumped = self.b.add(self.b.load(iv_ptr), self._value(step), var + ".next")
        self.b.store(bumped, iv_ptr)
        self.b.br(cond_bb)
        self.b.position_at_end(exit_bb)

    @contextmanager
    def while_loop(self, make_cond: Callable[[], Value]):
        """``while (cond)`` where the condition is re-emitted per test."""
        cond_bb = self._new_block("w.cond")
        body_bb = self._new_block("w.body")
        exit_bb = self._new_block("w.end")
        self.b.br(cond_bb)
        self.b.position_at_end(cond_bb)
        cond = make_cond()
        self.b.cbr(cond, body_bb, exit_bb)
        self.b.position_at_end(body_bb)
        yield
        self.b.br(cond_bb)
        self.b.position_at_end(exit_bb)

    def if_(self, cond: Value, then_fn: Callable[[], None],
            else_fn: Optional[Callable[[], None]] = None) -> None:
        then_bb = self._new_block("if.then")
        merge_bb = self._new_block("if.end")
        else_bb = self._new_block("if.else") if else_fn is not None else merge_bb
        self.b.cbr(cond, then_bb, else_bb)
        self.b.position_at_end(then_bb)
        then_fn()
        if self.b.block is not None and self.b.block.terminator is None:
            self.b.br(merge_bb)
        if else_fn is not None:
            self.b.position_at_end(else_bb)
            else_fn()
            if self.b.block is not None and self.b.block.terminator is None:
                self.b.br(merge_bb)
        self.b.position_at_end(merge_bb)

    def switch(self, value: Value, cases: Sequence[tuple], default_fn: Callable[[], None]) -> None:
        """``switch`` with fall-through-free cases: [(const, fn), ...]."""
        merge_bb = self._new_block("sw.end")
        default_bb = self._new_block("sw.default")
        sw = self.b.switch(value, default_bb)
        for const, fn in cases:
            case_bb = self._new_block("sw.case")
            sw.add_case(ConstantInt(ty.i32, const), case_bb)
            self.b.position_at_end(case_bb)
            fn()
            if self.b.block.terminator is None:
                self.b.br(merge_bb)
        self.b.position_at_end(default_bb)
        default_fn()
        if self.b.block.terminator is None:
            self.b.br(merge_bb)
        self.b.position_at_end(merge_bb)

    def ret(self, value: Optional[IntLike] = None) -> None:
        self.b.ret(self._value(value) if isinstance(value, int) else value)

    def call(self, callee: Function, args: Sequence[IntLike], name: str = "") -> Value:
        return self.b.call(callee, [self._value(a) for a in args], name=name)
