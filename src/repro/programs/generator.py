"""Random HLS program generator — the CSmith stand-in.

Generates seeded, always-terminating, trap-free programs in Clang -O0
style (locals as allocas, loads/stores everywhere), with the constructs
that make the 45-pass action space meaningful: nested counted loops,
if/else diamonds, switches, global lookup tables, helper calls (some
tail-recursive, some with early-exit shapes), invokes, volatile
accesses, llvm.expect hints, and metadata for the strip passes.

Like the paper's flow (§3.4), :func:`passes_hls_filter` discards programs
that run too long or fail HLS compilation; :func:`generate_corpus`
applies it, so "100 random programs" always means 100 usable ones.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..hls.profiler import CycleProfiler, HLSCompilationError
from ..ir import types as ty
from ..ir.module import Function, Module
from ..ir.values import ConstantInt, GlobalVariable, Value
from .cbuilder import CWriter

__all__ = ["GeneratorConfig", "RandomProgramGenerator", "passes_hls_filter", "generate_corpus"]

_BIN_OPS = ("add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr", "sdiv", "srem")
_CMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")


class GeneratorConfig:
    """Tunable knobs; defaults produce ~60-300 instruction programs."""

    def __init__(self, max_stmts: int = 18, max_depth: int = 3, max_loop_trip: int = 12,
                 n_helpers: int = 3, n_globals: int = 3, p_volatile: float = 0.03,
                 p_invoke: float = 0.06, p_expect: float = 0.05) -> None:
        self.max_stmts = max_stmts
        self.max_depth = max_depth
        self.max_loop_trip = max_loop_trip
        self.n_helpers = n_helpers
        self.n_globals = n_globals
        self.p_volatile = p_volatile
        self.p_invoke = p_invoke
        self.p_expect = p_expect


class RandomProgramGenerator:
    def __init__(self, seed: int, config: Optional[GeneratorConfig] = None) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.config = config or GeneratorConfig()

    # -- public API -----------------------------------------------------------
    def generate(self, name: Optional[str] = None) -> Module:
        module = Module(name or f"rand{self.seed}")
        module.metadata["ident"] = "repro random program generator"
        module.metadata["dbg.file"] = f"{module.source_name}.c"
        self._make_globals(module)
        helpers = [self._make_helper(module, i) for i in range(self.config.n_helpers)]
        self._make_main(module, helpers)
        return module

    # -- globals ----------------------------------------------------------------
    def _make_globals(self, module: Module) -> None:
        rng = self.rng
        for i in range(self.config.n_globals):
            size = rng.choice((4, 8, 16, 32))
            values = [rng.randrange(-100, 100) for _ in range(size)]
            constant = rng.random() < 0.4
            # Writable data arrays are externally observable (a real
            # program would print them); constant tables stay internal so
            # -globalopt / -constmerge / -globaldce have something to do.
            gv = GlobalVariable(f"g{i}", ty.array_type(ty.i32, size), values,
                                is_constant=constant,
                                linkage="internal" if constant else "external")
            module.add_global(gv)
        module.add_global(GlobalVariable("gs", ty.i32, rng.randrange(1, 50), linkage="external"))

    # -- helper functions ----------------------------------------------------------
    def _make_helper(self, module: Module, index: int) -> Function:
        rng = self.rng
        kind = rng.choice(("pure", "early_exit", "tail_recursive", "array_walker"))
        name = f"helper{index}"
        if kind == "tail_recursive":
            return self._make_tail_recursive(module, name)
        if kind == "early_exit":
            return self._make_early_exit(module, name)
        if kind == "array_walker":
            return self._make_array_walker(module, name)
        return self._make_pure(module, name)

    def _make_pure(self, module: Module, name: str) -> Function:
        rng = self.rng
        fw = CWriter(module, name, ty.i32, [ty.i32, ty.i32], ["a", "b"])
        acc = fw.local("acc", init=0)
        a, b = fw.args
        x = fw.b
        v = a
        for _ in range(rng.randrange(2, 6)):
            op = rng.choice(("add", "sub", "mul", "xor", "and", "or"))
            operand = b if rng.random() < 0.5 else x.const(rng.randrange(1, 17))
            v = getattr(x, op if op not in ("and", "or") else op + "_")(v, operand)
        fw.store_var(acc, v)
        fw.ret(fw.load_var(acc))
        fw.func.metadata["dbg"] = name
        return fw.func

    def _make_early_exit(self, module: Module, name: str) -> Function:
        rng = self.rng
        fw = CWriter(module, name, ty.i32, [ty.i32], ["n"])
        (n,) = fw.args
        x = fw.b
        threshold = rng.randrange(0, 8)
        cond = x.icmp("sle", n, x.const(threshold), "early")
        early_bb = fw.func.add_block("early")
        work_bb = fw.func.add_block("work")
        x.cbr(cond, early_bb, work_bb)
        x.position_at_end(early_bb)
        x.ret(x.const(rng.randrange(-5, 5)))
        x.position_at_end(work_bb)
        fw.b.position_at_end(work_bb)
        acc = fw.local("acc", init=1)
        with fw.loop("i", 0, rng.randrange(3, self.config.max_loop_trip)) as i:
            t = x.mul(fw.load_var(acc), x.add(i, x.const(1)))
            fw.store_var(acc, x.and_(t, x.const(0xFFFF)))
        fw.ret(fw.load_var(acc))
        return fw.func

    def _make_tail_recursive(self, module: Module, name: str) -> Function:
        rng = self.rng
        fw = CWriter(module, name, ty.i32, [ty.i32, ty.i32], ["n", "acc"])
        n, acc = fw.args
        x = fw.b
        done = x.icmp("sle", n, x.const(0), "done")
        base_bb = fw.func.add_block("base")
        rec_bb = fw.func.add_block("rec")
        x.cbr(done, base_bb, rec_bb)
        x.position_at_end(base_bb)
        x.ret(acc)
        x.position_at_end(rec_bb)
        k = rng.randrange(1, 7)
        new_acc = x.add(acc, x.mul(n, x.const(k)))
        new_n = x.sub(n, x.const(1))
        result = x.call(fw.func, [new_n, new_acc], name="rec")
        x.ret(result)
        return fw.func

    def _make_array_walker(self, module: Module, name: str) -> Function:
        rng = self.rng
        fw = CWriter(module, name, ty.i32, [ty.i32], ["salt"])
        (salt,) = fw.args
        x = fw.b
        gv = module.globals[f"g{rng.randrange(self.config.n_globals)}"]
        size = gv.value_type.count  # type: ignore[attr-defined]
        acc = fw.local("acc", init=0)
        with fw.loop("i", 0, size) as i:
            elem = fw.load_elem(gv, i)
            mixed = x.xor(elem, salt)
            fw.store_var(acc, x.add(fw.load_var(acc), mixed))
        fw.ret(fw.load_var(acc))
        return fw.func

    # -- main -------------------------------------------------------------------------
    def _make_main(self, module: Module, helpers: List[Function]) -> None:
        rng = self.rng
        fw = CWriter(module, "main", ty.i32, [], [], linkage="external")
        self._fw = fw
        self._helpers = helpers
        self._scalars: List[Value] = []
        self._arrays: List[Value] = list(module.globals.values())
        self._arrays = [g for g in module.globals.values() if g.value_type.is_array]

        for i in range(rng.randrange(2, 5)):
            self._scalars.append(fw.local(f"v{i}", init=rng.randrange(-20, 20)))
        if rng.random() < 0.6:
            arr = fw.local_array("buf", rng.choice((4, 8, 16)))
            self._arrays.append(arr)
            with fw.loop("init", 0, arr.allocated_type.count) as i:
                fw.store_elem(arr, i, rng.randrange(0, 64))

        self._gen_statements(rng.randrange(self.config.max_stmts // 2, self.config.max_stmts + 1),
                             depth=0)

        # Checksum: mix all scalars into the return value.
        x = fw.b
        total: Value = x.const(0)
        for ptr in self._scalars:
            total = x.add(total, fw.load_var(ptr))
        total = x.and_(total, x.const(0x7FFFFFF))
        fw.ret(total)

    # -- statements -----------------------------------------------------------------
    def _gen_statements(self, count: int, depth: int) -> None:
        for _ in range(count):
            self._gen_statement(depth)

    def _gen_statement(self, depth: int) -> None:
        rng = self.rng
        choices: List[Callable[[int], None]] = [self._stmt_assign, self._stmt_assign,
                                                self._stmt_array_write, self._stmt_call]
        if depth < self.config.max_depth:
            choices += [self._stmt_if, self._stmt_loop, self._stmt_loop]
            if rng.random() < 0.25:
                choices.append(self._stmt_switch)
        rng.choice(choices)(depth)

    def _rand_value(self, depth: int = 0) -> Value:
        """A random i32 expression over locals, array reads and constants."""
        rng = self.rng
        fw = self._fw
        x = fw.b
        roll = rng.random()
        if roll < 0.3 or depth > 2:
            if rng.random() < 0.5 and self._scalars:
                return fw.load_var(rng.choice(self._scalars))
            return x.const(rng.choice((0, 1, 2, 3, 5, 8, 16, rng.randrange(-99, 100))))
        if roll < 0.45 and self._arrays:
            arr = rng.choice(self._arrays)
            size = self._array_size(arr)
            idx_val = self._rand_value(depth + 1)
            idx = x.urem(idx_val, x.const(size), "idx")
            volatile = rng.random() < self.config.p_volatile
            load = x.load(fw.index(arr, idx), "elem", volatile=volatile)
            if volatile:
                load.metadata["atomic"] = True
            return load
        op = rng.choice(_BIN_OPS)
        lhs = self._rand_value(depth + 1)
        rhs = self._rand_value(depth + 1)
        if op in ("shl", "lshr", "ashr"):
            rhs = x.and_(rhs, x.const(7), "shamt")
        method = {"and": "and_", "or": "or_"}.get(op, op)
        result = getattr(x, method)(lhs, rhs)
        if rng.random() < 0.1:
            result.metadata["dbg"] = f"line{rng.randrange(1, 400)}"
        return result

    def _rand_cond(self) -> Value:
        x = self._fw.b
        cond = x.icmp(self.rng.choice(_CMP_PREDS), self._rand_value(), self._rand_value(), "c")
        if self.rng.random() < self.config.p_expect:
            cond = x.call("llvm.expect.i1", [cond, x.const(1, ty.i1)],
                          return_type=ty.i1, name="exp")
        return cond

    @staticmethod
    def _array_size(arr: Value) -> int:
        pointee = arr.type.pointee  # type: ignore[union-attr]
        return pointee.count

    def _stmt_assign(self, depth: int) -> None:
        if not self._scalars:
            return
        self._fw.store_var(self.rng.choice(self._scalars), self._rand_value())

    def _stmt_array_write(self, depth: int) -> None:
        rng = self.rng
        fw = self._fw
        x = fw.b
        writable = [a for a in self._arrays
                    if not (isinstance(a, GlobalVariable) and a.is_constant)]
        if not writable:
            return
        arr = rng.choice(writable)
        idx = x.urem(self._rand_value(), x.const(self._array_size(arr)), "wi")
        x.store(self._rand_value(), fw.index(arr, idx))

    def _stmt_call(self, depth: int) -> None:
        rng = self.rng
        fw = self._fw
        x = fw.b
        helper = rng.choice(self._helpers)
        n_params = len(helper.args)
        if helper.name.startswith("helper") and "acc" in [a.name for a in helper.args]:
            args = [x.const(rng.randrange(0, 12)), x.const(0)]  # bounded recursion depth
        else:
            args = [self._rand_value() for _ in range(n_params)]
        if rng.random() < self.config.p_invoke:
            normal = fw._new_block("inv.ok")
            unwind = fw._new_block("inv.uw")
            result = x.invoke(helper, args[:n_params], ty.i32, normal, unwind)
            x.position_at_end(unwind)
            x.unreachable()
            x.position_at_end(normal)
        else:
            result = x.call(helper, args[:n_params])
        if self._scalars:
            target = rng.choice(self._scalars)
            fw.store_var(target, x.add(fw.load_var(target), result))

    def _stmt_if(self, depth: int) -> None:
        rng = self.rng
        has_else = rng.random() < 0.5
        n_then = rng.randrange(1, 4)
        n_else = rng.randrange(1, 3)
        self._fw.if_(
            self._rand_cond(),
            lambda: self._gen_statements(n_then, depth + 1),
            (lambda: self._gen_statements(n_else, depth + 1)) if has_else else None,
        )

    def _stmt_loop(self, depth: int) -> None:
        rng = self.rng
        fw = self._fw
        trip = rng.randrange(2, self.config.max_loop_trip + 1)
        n_body = rng.randrange(1, 4)
        with fw.loop(f"l{depth}_{rng.randrange(1000)}", 0, trip) as iv:
            if self._scalars and rng.random() < 0.7:
                target = rng.choice(self._scalars)
                fw.store_var(target, fw.b.add(fw.load_var(target), iv))
            self._gen_statements(n_body, depth + 1)

    def _stmt_switch(self, depth: int) -> None:
        rng = self.rng
        fw = self._fw
        x = fw.b
        scrutinee = x.urem(self._rand_value(), x.const(8), "sw")
        n_cases = rng.randrange(2, 5)
        picks = rng.sample(range(8), n_cases)
        cases = [(c, (lambda: self._stmt_assign(depth + 1))) for c in picks]
        fw.switch(scrutinee, cases, lambda: self._stmt_assign(depth + 1))


def passes_hls_filter(module: Module, max_steps: int = 400_000) -> bool:
    """The paper's filter: drop programs that trap, loop too long, or fail HLS."""
    try:
        CycleProfiler(max_steps=max_steps).profile(module)
        return True
    except HLSCompilationError:
        return False


def generate_corpus(n: int, seed: int = 0, config: Optional[GeneratorConfig] = None,
                    max_steps: int = 400_000) -> List[Module]:
    """Generate ``n`` filtered random programs (deterministic in ``seed``)."""
    corpus: List[Module] = []
    attempt = 0
    while len(corpus) < n and attempt < 50 * max(n, 1):
        module = RandomProgramGenerator(seed * 1_000_003 + attempt, config).generate(
            name=f"rand_{seed}_{attempt}")
        attempt += 1
        if passes_hls_filter(module, max_steps=max_steps):
            corpus.append(module)
    if len(corpus) < n:
        raise RuntimeError(f"generator produced only {len(corpus)}/{n} viable programs")
    return corpus
