"""The nine "real benchmarks" — CHStone / LegUp-example stand-ins.

Each builder reconstructs the structural character of its namesake at a
scale the interpreter profiles in milliseconds: the same loop shapes,
table lookups, recursion patterns and arithmetic mix, emitted in Clang
-O0 style (alloca locals, redundant loads/stores) so the optimization
headroom matches what the paper's toolchain saw.

    adpcm      — ADPCM encode: quantizer with step-size tables, clamping
    aes        — S-box substitution + xor round mixing over a state block
    blowfish   — Feistel rounds with S-box lookups and key xors
    dhrystone  — integer/string-ish mix: copies, compares, branches, calls
    gsm        — LPC analysis: windowing MACs, max-find, division
    matmul     — dense 8×8×8 integer matrix multiply
    mpeg2      — IDCT-like row/column butterflies with shifts + saturation
    qsort      — recursive quicksort over a 32-element array
    sha        — message-schedule expansion + 64 rounds of rotate/xor/add

All mains return a checksum so differential testing catches any
miscompilation end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..ir import types as ty
from ..ir.module import Function, Module
from ..ir.values import ConstantInt, GlobalVariable
from .cbuilder import CWriter

__all__ = ["BENCHMARK_NAMES", "build", "build_all"]

BENCHMARK_NAMES = (
    "adpcm", "aes", "blowfish", "dhrystone", "gsm",
    "matmul", "mpeg2", "qsort", "sha",
)


def _table(seed: int, n: int, lo: int = 0, hi: int = 255) -> List[int]:
    """Deterministic pseudo-random table (xorshift-ish)."""
    values = []
    state = seed * 2654435761 % (2**32) or 1
    for _ in range(n):
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        values.append(lo + state % (hi - lo + 1))
    return values


# ---------------------------------------------------------------------------
def build_adpcm() -> Module:
    m = Module("adpcm")
    step_table = GlobalVariable("step_table", ty.array_type(ty.i32, 16),
                                [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31],
                                is_constant=True)
    m.add_global(step_table)
    index_adj = GlobalVariable("index_adj", ty.array_type(ty.i32, 8),
                               [-1, -1, -1, -1, 2, 4, 6, 8], is_constant=True)
    m.add_global(index_adj)
    samples = GlobalVariable("samples", ty.array_type(ty.i32, 64), _table(3, 64, -128, 127))
    m.add_global(samples)

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    valpred = fw.local("valpred", init=0)
    index = fw.local("index", init=0)
    checksum = fw.local("checksum", init=0)
    with fw.loop("i", 0, 64) as i:
        sample = fw.load_elem(samples, i)
        diff = x.sub(sample, fw.load_var(valpred), "diff")
        sign = x.icmp("slt", diff, x.const(0), "sign")
        mag = x.select(sign, x.sub(x.const(0), diff), diff, "mag")
        step = fw.load_elem(step_table, fw.load_var(index))
        # 3-bit quantization: delta = min(mag*4/step, 7)
        q = x.sdiv(x.mul(mag, x.const(4)), step, "q")
        too_big = x.icmp("sgt", q, x.const(7), "big")
        delta = x.select(too_big, x.const(7), q, "delta")
        # reconstruct
        dq = x.sdiv(x.mul(delta, step), x.const(4), "dq")
        dq_signed = x.select(sign, x.sub(x.const(0), dq), dq, "dqs")
        fw.store_var(valpred, x.add(fw.load_var(valpred), dq_signed))
        # clamp valpred to [-256, 255]
        vp = fw.load_var(valpred)
        hi = x.icmp("sgt", vp, x.const(255), "hi")
        fw.store_var(valpred, x.select(hi, x.const(255), vp, "clhi"))
        vp2 = fw.load_var(valpred)
        lo = x.icmp("slt", vp2, x.const(-256), "lo")
        fw.store_var(valpred, x.select(lo, x.const(-256), vp2, "cllo"))
        # index update
        adj = fw.load_elem(index_adj, x.and_(delta, x.const(7), "d7"))
        ni = x.add(fw.load_var(index), adj, "ni")
        neg = x.icmp("slt", ni, x.const(0), "neg")
        ni2 = x.select(neg, x.const(0), ni)
        big2 = x.icmp("sgt", ni2, x.const(15), "big2")
        fw.store_var(index, x.select(big2, x.const(15), ni2))
        fw.store_var(checksum, x.add(fw.load_var(checksum),
                                     x.xor(delta, fw.load_var(valpred))))
    fw.ret(x.and_(fw.load_var(checksum), x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_aes() -> Module:
    m = Module("aes")
    sbox = GlobalVariable("sbox", ty.array_type(ty.i32, 256), _table(7, 256), is_constant=True)
    m.add_global(sbox)
    key = GlobalVariable("key", ty.array_type(ty.i32, 16), _table(11, 16), is_constant=True)
    m.add_global(key)
    state_init = _table(13, 16)

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    state = fw.local_array("state", 16)
    with fw.loop("ld", 0, 16) as i:
        # initialize from an unrolled constant pattern through the sbox
        base = x.add(i, x.const(state_init[0] & 0xF))
        fw.store_elem(state, i, x.and_(x.mul(base, x.const(31)), x.const(255)))

    with fw.loop("round", 0, 10) as r:
        # SubBytes + AddRoundKey
        with fw.loop("sb", 0, 16) as i:
            v = fw.load_elem(state, i)
            sub = fw.load_elem(sbox, x.and_(v, x.const(255)))
            k = fw.load_elem(key, i)
            mixed = x.xor(sub, x.xor(k, r))
            fw.store_elem(state, i, x.and_(mixed, x.const(255)))
        # ShiftRows-ish rotation via index arithmetic
        with fw.loop("sr", 0, 4) as row:
            first = fw.load_elem(state, x.mul(row, x.const(4)))
            with fw.loop("c", 0, 3) as c:
                src = x.add(x.mul(row, x.const(4)), x.add(c, x.const(1)))
                dst = x.add(x.mul(row, x.const(4)), c)
                fw.store_elem(state, dst, fw.load_elem(state, x.and_(src, x.const(15))))
            fw.store_elem(state, x.add(x.mul(row, x.const(4)), x.const(3)), first)

    checksum = fw.local("checksum", init=0)
    with fw.loop("cs", 0, 16) as i:
        fw.store_var(checksum, x.xor(fw.load_var(checksum),
                                     x.shl(fw.load_elem(state, i), x.and_(i, x.const(3)))))
    fw.ret(x.and_(fw.load_var(checksum), x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_blowfish() -> Module:
    m = Module("blowfish")
    s0 = GlobalVariable("bf_s0", ty.array_type(ty.i32, 64), _table(17, 64, 0, 65535), is_constant=True)
    s1 = GlobalVariable("bf_s1", ty.array_type(ty.i32, 64), _table(19, 64, 0, 65535), is_constant=True)
    parr = GlobalVariable("bf_p", ty.array_type(ty.i32, 18), _table(23, 18, 0, 65535), is_constant=True)
    for g in (s0, s1, parr):
        m.add_global(g)

    # F(x) = (S0[x>>6 & 63] + S1[x & 63]) ^ (x >> 3)
    f = CWriter(m, "bf_f", ty.i32, [ty.i32], ["xv"])
    xv = f.args[0]
    fb = f.b
    a = f.load_elem(s0, fb.and_(fb.lshr(xv, fb.const(6)), fb.const(63)))
    b2 = f.load_elem(s1, fb.and_(xv, fb.const(63)))
    f.ret(fb.xor(fb.add(a, b2), fb.lshr(xv, fb.const(3))))

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    left = fw.local("left", init=0x1234)
    right = fw.local("right", init=0x5678)
    checksum = fw.local("checksum", init=0)
    with fw.loop("blk", 0, 8) as blk:
        fw.store_var(left, x.xor(fw.load_var(left), blk))
        with fw.loop("round", 0, 16) as r:
            p = fw.load_elem(parr, r)
            l = x.xor(fw.load_var(left), p, "lx")
            fr = fw.call(f.func, [l], name="fr")
            new_right = x.xor(fw.load_var(right), fr)
            fw.store_var(right, l)
            fw.store_var(left, new_right)
        fw.store_var(checksum, x.add(fw.load_var(checksum),
                                     x.xor(fw.load_var(left), fw.load_var(right))))
    fw.ret(x.and_(fw.load_var(checksum), x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_dhrystone() -> Module:
    m = Module("dhrystone")
    str_a = GlobalVariable("str_a", ty.array_type(ty.i32, 32), _table(29, 32, 32, 126))
    str_b = GlobalVariable("str_b", ty.array_type(ty.i32, 32), _table(31, 32, 32, 126), linkage="external")
    m.add_global(str_a)
    m.add_global(str_b)

    # proc: small integer function with branches (Dhrystone's Proc_7-ish).
    proc = CWriter(m, "proc7", ty.i32, [ty.i32, ty.i32], ["in1", "in2"])
    pa, pb = proc.args
    pbld = proc.b
    t = pbld.add(pa, pbld.const(2))
    proc.ret(pbld.add(t, pb))

    # func: character comparison (Func_1-ish).
    fcmp = CWriter(m, "func1", ty.i32, [ty.i32, ty.i32], ["c1", "c2"])
    fa, fb_ = fcmp.args
    fb2 = fcmp.b
    same = fb2.icmp("eq", fa, fb_, "same")
    fcmp.ret(fb2.select(same, fb2.const(0), fb2.const(1), "ident"))

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    int_glob = fw.local("int_glob", init=0)
    bool_glob = fw.local("bool_glob", init=0)
    ch_index = fw.local("ch_index", init=0)
    with fw.loop("run", 0, 32) as run:
        # string copy (memcpy-idiom shaped loop)
        with fw.loop("cp", 0, 32) as i:
            fw.store_elem(str_b, i, fw.load_elem(str_a, i))
        # comparisons + branches
        c1 = fw.load_elem(str_a, x.and_(run, x.const(31)))
        c2 = fw.load_elem(str_b, x.and_(x.add(run, x.const(1)), x.const(31)))
        cmp_res = fw.call(fcmp.func, [c1, c2], name="cmpres")
        fw.if_(
            x.icmp("eq", cmp_res, x.const(0), "ceq"),
            lambda: fw.store_var(int_glob, x.add(fw.load_var(int_glob), x.const(3))),
            lambda: fw.store_var(bool_glob, x.xor(fw.load_var(bool_glob), x.const(1))),
        )
        p = fw.call(proc.func, [fw.load_var(int_glob), run], name="p7")
        fw.store_var(int_glob, x.srem(p, x.const(1000)))
        fw.store_var(ch_index, x.add(fw.load_var(ch_index), x.and_(p, x.const(7))))
    total = x.add(fw.load_var(int_glob),
                  x.add(fw.load_var(bool_glob), fw.load_var(ch_index)))
    fw.ret(x.and_(total, x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_gsm() -> Module:
    m = Module("gsm")
    samples = GlobalVariable("lpc_in", ty.array_type(ty.i32, 40), _table(37, 40, -512, 511))
    m.add_global(samples)

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    dmax = fw.local("dmax", init=0)
    scal = fw.local("scal", init=0)
    acc = fw.local("acc", init=0)
    # max |sample|
    with fw.loop("mx", 0, 40) as i:
        v = fw.load_elem(samples, i)
        neg = x.icmp("slt", v, x.const(0), "neg")
        av = x.select(neg, x.sub(x.const(0), v), v, "abs")
        bigger = x.icmp("sgt", av, fw.load_var(dmax), "bigger")
        fw.if_(bigger, lambda av=av: fw.store_var(dmax, av))
    # scale factor by leading zero-ish loop
    temp = fw.local("temp", init=0)
    fw.store_var(temp, fw.load_var(dmax))
    with fw.while_loop(lambda: x.icmp("sgt", fw.load_var(temp), x.const(16), "scaling")):
        fw.store_var(temp, x.ashr(fw.load_var(temp), x.const(1)))
        fw.store_var(scal, x.add(fw.load_var(scal), x.const(1)))
    # windowed autocorrelation MACs for lags 0..8
    with fw.loop("lag", 0, 9) as k:
        fw.store_var(acc, x.ashr(fw.load_var(acc), x.const(1)))
        with fw.loop("n", 0, 31) as n:
            s1 = fw.load_elem(samples, x.and_(n, x.const(31)))
            s2 = fw.load_elem(samples, x.and_(x.add(n, k), x.const(31)))
            scaled1 = x.ashr(s1, fw.load_var(scal))
            prod = x.mul(scaled1, s2, "prod")
            fw.store_var(acc, x.add(fw.load_var(acc), prod))
    denom = x.or_(fw.load_var(dmax), x.const(1), "denom")
    fw.ret(x.and_(x.sdiv(fw.load_var(acc), denom), x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_matmul() -> Module:
    m = Module("matmul")
    a = GlobalVariable("mat_a", ty.array_type(ty.i32, 64), _table(41, 64, -9, 9))
    b = GlobalVariable("mat_b", ty.array_type(ty.i32, 64), _table(43, 64, -9, 9))
    c = GlobalVariable("mat_c", ty.array_type(ty.i32, 64), [0] * 64, linkage="external")
    for g in (a, b, c):
        m.add_global(g)

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    with fw.loop("i", 0, 8) as i:
        with fw.loop("j", 0, 8) as j:
            acc = fw.local(f"acc", init=0)
            fw.store_var(acc, 0)
            with fw.loop("k", 0, 8) as k:
                av = fw.load_elem(a, x.add(x.mul(i, x.const(8)), k))
                bv = fw.load_elem(b, x.add(x.mul(k, x.const(8)), j))
                fw.store_var(acc, x.add(fw.load_var(acc), x.mul(av, bv)))
            fw.store_elem(c, x.add(x.mul(i, x.const(8)), j), fw.load_var(acc))
    checksum = fw.local("checksum", init=0)
    with fw.loop("cs", 0, 64) as i:
        fw.store_var(checksum, x.add(fw.load_var(checksum), fw.load_elem(c, i)))
    fw.ret(x.and_(fw.load_var(checksum), x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_mpeg2() -> Module:
    m = Module("mpeg2")
    block = GlobalVariable("idct_block", ty.array_type(ty.i32, 64), _table(47, 64, -256, 255), linkage="external")
    m.add_global(block)

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    # row-wise butterflies
    with fw.loop("row", 0, 8) as row:
        base = x.mul(row, x.const(8), "base")
        with fw.loop("p", 0, 4) as p:
            i0 = x.add(base, p)
            i1 = x.add(base, x.sub(x.const(7), p))
            v0 = fw.load_elem(block, i0)
            v1 = fw.load_elem(block, i1)
            s = x.add(v0, v1, "s")
            d = x.sub(v0, v1, "d")
            fw.store_elem(block, i0, x.ashr(x.mul(s, x.const(181)), x.const(8)))
            fw.store_elem(block, i1, x.ashr(x.mul(d, x.const(181)), x.const(8)))
    # column-wise accumulate with saturation
    with fw.loop("col", 0, 8) as col:
        acc = fw.local("colacc", init=0)
        fw.store_var(acc, 0)
        with fw.loop("r2", 0, 8) as r2:
            v = fw.load_elem(block, x.add(x.mul(r2, x.const(8)), col))
            fw.store_var(acc, x.add(fw.load_var(acc), v))
        av = fw.load_var(acc)
        hi = x.icmp("sgt", av, x.const(2047), "hi")
        clipped = x.select(hi, x.const(2047), av)
        lo = x.icmp("slt", clipped, x.const(-2048), "lo")
        clipped2 = x.select(lo, x.const(-2048), clipped)
        fw.store_elem(block, col, clipped2)
    checksum = fw.local("checksum", init=0)
    with fw.loop("cs", 0, 64) as i:
        fw.store_var(checksum, x.xor(fw.load_var(checksum), fw.load_elem(block, i)))
    fw.ret(x.and_(fw.load_var(checksum), x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_qsort() -> Module:
    m = Module("qsort")
    data = GlobalVariable("qs_data", ty.array_type(ty.i32, 32), _table(53, 32, -100, 100), linkage="external")
    m.add_global(data)

    # recursive quicksort(lo, hi)
    qs = CWriter(m, "quicksort", ty.void, [ty.i32, ty.i32], ["lo", "hi"])
    lo, hi = qs.args
    qb = qs.b
    done = qb.icmp("sge", lo, hi, "done")
    ret_bb = qs.func.add_block("ret")
    work_bb = qs.func.add_block("work")
    qb.cbr(done, ret_bb, work_bb)
    qb.position_at_end(ret_bb)
    qb.ret()
    qb.position_at_end(work_bb)
    qs.b.position_at_end(work_bb)
    pivot_ptr = qs.local("pivot")
    i_ptr = qs.local("ip")
    qs.store_var(pivot_ptr, qs.load_elem(data, hi))
    qs.store_var(i_ptr, qb.sub(lo, qb.const(1)))
    # Partition loop over [lo, hi) — bounds are runtime values, so use the
    # while form rather than the constant-bound counted loop.
    jp = qs.local("jp")
    qs.store_var(jp, lo)
    with qs.while_loop(lambda: qb.icmp("slt", qs.load_var(jp), hi, "jcmp")):
        j = qs.load_var(jp)
        vj = qs.load_elem(data, j)
        less = qb.icmp("sle", vj, qs.load_var(pivot_ptr), "less")

        def swap_in():
            qs.store_var(i_ptr, qb.add(qs.load_var(i_ptr), qb.const(1)))
            i_v = qs.load_var(i_ptr)
            tmp = qs.load_elem(data, i_v)
            qs.store_elem(data, i_v, qs.load_elem(data, qs.load_var(jp)))
            qs.store_elem(data, qs.load_var(jp), tmp)

        qs.if_(less, swap_in)
        qs.store_var(jp, qb.add(qs.load_var(jp), qb.const(1)))
    # place pivot
    ip1 = qb.add(qs.load_var(i_ptr), qb.const(1), "ip1")
    tmp2 = qs.load_elem(data, ip1)
    qs.store_elem(data, ip1, qs.load_elem(data, hi))
    qs.store_elem(data, hi, tmp2)
    qb.call(qs.func, [lo, qb.sub(ip1, qb.const(1))], name="")
    qb.call(qs.func, [qb.add(ip1, qb.const(1)), hi], name="")
    qb.ret()

    fw = CWriter(m, "main", linkage="external")
    x = fw.b
    x.call(qs.func, [x.const(0), x.const(31)], name="")
    checksum = fw.local("checksum", init=0)
    with fw.loop("cs", 0, 32) as i:
        weighted = x.mul(fw.load_elem(data, i), x.add(i, x.const(1)))
        fw.store_var(checksum, x.add(fw.load_var(checksum), weighted))
    fw.ret(x.and_(fw.load_var(checksum), x.const(0xFFFFFF)))
    return m


# ---------------------------------------------------------------------------
def build_sha() -> Module:
    m = Module("sha")
    msg = GlobalVariable("sha_msg", ty.array_type(ty.i32, 16), _table(59, 16, 0, 65535), is_constant=True)
    m.add_global(msg)
    w = GlobalVariable("sha_w", ty.array_type(ty.i32, 80), [0] * 80, linkage="external")
    m.add_global(w)

    fw = CWriter(m, "main", linkage="external")
    x = fw.b

    def rotl(v, n):
        left = x.shl(v, x.const(n))
        right = x.lshr(v, x.const(32 - n))
        return x.or_(left, right, "rot")

    # schedule expansion
    with fw.loop("cp", 0, 16) as i:
        fw.store_elem(w, i, fw.load_elem(msg, i))
    with fw.loop("exp", 16, 80) as t:
        a1 = fw.load_elem(w, x.sub(t, x.const(3)))
        a2 = fw.load_elem(w, x.sub(t, x.const(8)))
        a3 = fw.load_elem(w, x.sub(t, x.const(14)))
        a4 = fw.load_elem(w, x.sub(t, x.const(16)))
        mixed = x.xor(x.xor(a1, a2), x.xor(a3, a4), "mixed")
        fw.store_elem(w, t, rotl(mixed, 1))

    h0 = fw.local("h0", init=0x67452301)
    h1 = fw.local("h1", init=0x7FFFFFFF)
    h2 = fw.local("h2", init=0x12345678)
    h3 = fw.local("h3", init=0x0FEDCBA9)
    h4 = fw.local("h4", init=0x55555555)
    with fw.loop("round", 0, 80) as t:
        a = fw.load_var(h0)
        b2 = fw.load_var(h1)
        c = fw.load_var(h2)
        d = fw.load_var(h3)
        e = fw.load_var(h4)
        # f(t): rounds 0-19 Ch, 20-39 parity, 40-59 Maj, 60-79 parity
        ch = x.or_(x.and_(b2, c), x.and_(x.xor(b2, x.const(-1)), d), "ch")
        par = x.xor(b2, x.xor(c, d), "par")
        maj = x.or_(x.or_(x.and_(b2, c), x.and_(b2, d)), x.and_(c, d), "maj")
        lt20 = x.icmp("slt", t, x.const(20), "lt20")
        lt40 = x.icmp("slt", t, x.const(40), "lt40")
        lt60 = x.icmp("slt", t, x.const(60), "lt60")
        f_mid = x.select(lt60, maj, par, "fmid")
        f_lo = x.select(lt40, par, f_mid, "flo")
        f = x.select(lt20, ch, f_lo, "f")
        wt = fw.load_elem(w, t)
        temp = x.add(rotl(a, 5), x.add(f, x.add(e, x.add(wt, x.const(0x5A827999)))))
        fw.store_var(h4, d)
        fw.store_var(h3, c)
        fw.store_var(h2, rotl(b2, 30))
        fw.store_var(h1, a)
        fw.store_var(h0, temp)
    total = x.add(fw.load_var(h0),
                  x.add(fw.load_var(h1),
                        x.add(fw.load_var(h2),
                              x.add(fw.load_var(h3), fw.load_var(h4)))))
    fw.ret(x.and_(total, x.const(0xFFFFFF)))
    return m


_BUILDERS: Dict[str, Callable[[], Module]] = {
    "adpcm": build_adpcm,
    "aes": build_aes,
    "blowfish": build_blowfish,
    "dhrystone": build_dhrystone,
    "gsm": build_gsm,
    "matmul": build_matmul,
    "mpeg2": build_mpeg2,
    "qsort": build_qsort,
    "sha": build_sha,
}


def build(name: str) -> Module:
    """Build one benchmark module by name (fresh instance every call)."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}") from None


def build_all() -> Dict[str, Module]:
    return {name: build(name) for name in BENCHMARK_NAMES}
