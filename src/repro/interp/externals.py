"""External (library/intrinsic) functions known to the toolchain.

These model the libm/libc surface CHStone-style HLS kernels touch, plus
the LLVM intrinsics some passes introduce (``memset``/``memcpy`` from
-loop-idiom and -memcpyopt, ``llvm.expect`` from profile annotations that
``-lower-expect`` strips).

Each entry carries:
* an evaluation function over runtime scalars (used by the interpreter),
* attribute flags (``readnone``/``readonly``) consumed by CSE/LICM/DSE
  and the scheduler,
* a latency entry lives separately in :mod:`repro.hls.delays`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet

from .state import Memory, MemPointer, TrapError

__all__ = ["EXTERNAL_ATTRIBUTES", "call_external", "is_known_external"]

# Attribute sets: readnone = no memory access at all; readonly = reads only.
EXTERNAL_ATTRIBUTES: Dict[str, FrozenSet[str]] = {
    "sqrt": frozenset({"readnone"}),
    "fabs": frozenset({"readnone"}),
    "sin": frozenset({"readnone"}),
    "cos": frozenset({"readnone"}),
    "exp": frozenset({"readnone"}),
    "log": frozenset({"readnone"}),
    "abs": frozenset({"readnone"}),
    "min": frozenset({"readnone"}),
    "max": frozenset({"readnone"}),
    "llvm.expect.i32": frozenset({"readnone"}),
    "llvm.expect.i1": frozenset({"readnone"}),
    "llvm.memset": frozenset(),
    "llvm.memcpy": frozenset(),
    "putchar": frozenset(),  # writes the output stream
}


def is_known_external(name: str) -> bool:
    return name in EXTERNAL_ATTRIBUTES


def call_external(name: str, args, memory: Memory, output: list) -> object:
    """Evaluate an external call. ``output`` collects observable writes."""
    if name == "sqrt":
        x = float(args[0])
        return math.sqrt(x) if x >= 0 else math.nan
    if name == "fabs":
        return abs(float(args[0]))
    if name == "sin":
        return math.sin(float(args[0]))
    if name == "cos":
        return math.cos(float(args[0]))
    if name == "exp":
        x = float(args[0])
        return math.exp(x) if x < 700 else math.inf
    if name == "log":
        x = float(args[0])
        if x > 0:
            return math.log(x)
        return -math.inf if x == 0 else math.nan
    if name == "abs":
        return abs(int(args[0]))
    if name == "min":
        return min(int(args[0]), int(args[1]))
    if name == "max":
        return max(int(args[0]), int(args[1]))
    if name in ("llvm.expect.i32", "llvm.expect.i1"):
        return args[0]  # value passthrough; the hint is metadata-only
    if name == "llvm.memset":
        dst, value, count = args
        if not isinstance(dst, MemPointer):
            raise TrapError("memset destination is not a pointer")
        memory.fill(dst, int(value), int(count))
        return None
    if name == "llvm.memcpy":
        dst, src, count = args
        if not isinstance(dst, MemPointer) or not isinstance(src, MemPointer):
            raise TrapError("memcpy operand is not a pointer")
        memory.copy(dst, src, int(count))
        return None
    if name == "putchar":
        output.append(int(args[0]) & 0xFF)
        return int(args[0])
    raise TrapError(f"call to unknown external function @{name}")
