"""Data-parallel simulation: lock-step batched execution of shared kernels.

Every GA/PSO generation, vec-env wave and ``evaluate_batch`` call scores
a population of candidate modules whose functions share structural
hashes — the kernel cache already dedups their *compilation*; this
module dedups and batches their *execution*:

* **Execution-signature dedup** — lanes whose modules are execution-
  equivalent (same global contents in allocation order, same defined
  functions by name and structural body hash) run once; the result fans
  back out with per-lane ``block_counts`` remapped onto each module's
  own :class:`BasicBlock` objects. Populations are full of such lanes:
  any pass that happens to be a no-op on a candidate yields a clone
  with a distinct cache key but an identical execution.
* **Lock-step SIMT execution** — distinct lanes whose *entry* functions
  share one compiled kernel execute the entry frame in lock step over a
  dense SoA register file (a 2-D ``numpy`` object array, one row per
  lane): waves group lanes by current block index, phi moves apply as
  batched column moves per predecessor edge, and a vectorized
  terminator step (:attr:`CompiledFunction` ``term_desc``) decodes once
  per wave to advance every lane's next-block index. Control flow
  diverges freely — the active mask is the wave partition itself, so
  lanes in different blocks retire independently.

Per-lane :class:`_ExecState` budgets keep :class:`StepBudgetExceeded`
raising at the identical step to a solo run (including the reference's
near-budget slow path), and a trap or HLS failure detaches its lane
without poisoning siblings.

Bit-identity contract (mirrors ``REPRO_SIM_KERNELS``): for any batch,
per-lane results equal what :class:`KernelInterpreter` produces module
by module — ``ExecutionResult.observable()``, ``steps``,
``block_counts``, ``call_counts``, ``output`` — or the lane fails with
the same error category. ``REPRO_SIM_BATCH=off|on|verify`` selects the
mode; it is deliberately NOT part of any cache key or fingerprint.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry as tm
from ..ir.module import Module
from .interpreter import ExecutionResult
from .kernels import KernelInterpreter, VerificationError, _error_category, \
    compiled_for
from .simd import sim_simd_mode
from .state import (
    InterpreterLimitExceeded,
    MemPointer,
    StepBudgetExceeded,
    TrapError,
)

__all__ = ["BatchedKernelExecutor", "sim_batch_mode", "sim_simd_mode",
           "batch_exec_info", "clear_batch_exec_stats"]

LaneOutcome = Union[ExecutionResult, BaseException]

_MISSING = object()


def sim_batch_mode(override: Optional[str] = None) -> str:
    """Resolve the batched-execution toggle: ``off`` (per-program
    kernels), ``on`` (dedup + lock-step batched execution, the default),
    or ``verify`` (run both, hard-fail on any divergence). Mirrors the
    ``REPRO_SIM_KERNELS`` contract: backends are bit-identical, so the
    mode stays out of every cache key and toolchain fingerprint."""
    mode = override if override is not None else os.environ.get("REPRO_SIM_BATCH", "on")
    mode = mode.strip().lower()
    if mode not in ("off", "on", "verify"):
        raise ValueError(f"REPRO_SIM_BATCH must be off|on|verify, got {mode!r}")
    return mode


# -- process-wide batching statistics (reported via engine.cache_info) --------

_stats_lock = threading.Lock()
_batch_runs = 0          # run_batch invocations
_batch_lanes = 0         # lanes submitted
_batch_executed = 0      # lanes actually executed (group representatives)
_batch_dedup_saved = 0   # lanes answered by a sibling's execution
_batch_fallbacks = 0     # singleton cohorts sent through the scalar kernel
# typed-SIMD tier coverage (counted per wave-segment execution, simd on)
_simd_segments_vectorized = 0  # planned segments executed as column ops
_simd_segments_scalar = 0      # segments executed through scalar closures
_simd_guard_fallbacks = 0      # planned segments bailed by a gather guard
_simd_column_ops = 0           # column ufunc dispatches issued


def batch_exec_info() -> Dict[str, object]:
    with _stats_lock:
        vec, scal = _simd_segments_vectorized, _simd_segments_scalar
        return {"batch_runs": _batch_runs,
                "batch_lanes": _batch_lanes,
                "batch_executed": _batch_executed,
                "batch_dedup_saved": _batch_dedup_saved,
                "batch_fallbacks": _batch_fallbacks,
                "simd_segments_vectorized": vec,
                "simd_segments_scalar": scal,
                "simd_guard_fallbacks": _simd_guard_fallbacks,
                "simd_column_ops": _simd_column_ops,
                "simd_vectorized_ratio":
                    round(vec / (vec + scal), 4) if vec + scal else 0.0,
                "batch_sig_memo_hits": _sig_memo_hits,
                "batch_sig_memo_misses": _sig_memo_misses}


def clear_batch_exec_stats() -> None:
    global _batch_runs, _batch_lanes, _batch_executed
    global _batch_dedup_saved, _batch_fallbacks
    global _simd_segments_vectorized, _simd_segments_scalar
    global _simd_guard_fallbacks, _simd_column_ops
    global _sig_memo_hits, _sig_memo_misses
    with _stats_lock:
        _batch_runs = _batch_lanes = _batch_executed = 0
        _batch_dedup_saved = _batch_fallbacks = 0
        _simd_segments_vectorized = _simd_segments_scalar = 0
        _simd_guard_fallbacks = _simd_column_ops = 0
    with _sig_lock:
        _sig_memo_hits = _sig_memo_misses = 0
        _sig_memo.clear()


# -- execution signatures ------------------------------------------------------

# exec_signature memo, keyed per (module, Module.version): repeated waves
# over unchanged candidates (vec-env steps re-submitting survivors, GA
# elites) skip re-flattening every global initializer. PassManager bumps
# ``Module.version`` on mutation, which is the invalidation contract.
_sig_lock = threading.Lock()
_sig_memo: "weakref.WeakKeyDictionary[Module, Tuple]" = weakref.WeakKeyDictionary()
_sig_memo_hits = 0
_sig_memo_misses = 0


def exec_signature(module: Module, entry: str,
                   keys: Optional[Dict] = None) -> Tuple:
    """Hashable identity of everything an execution can observe: globals
    in *allocation order* (segment ids are observable through pointer
    values), declarations by name, defined functions by (name,
    structural body hash), and the entry point. Equal signatures imply
    bit-identical executions. Memoized per ``(module, Module.version)``."""
    global _sig_memo_hits, _sig_memo_misses
    version = module.version
    with _sig_lock:
        memo = _sig_memo.get(module)
        if memo is not None and memo[0] == version:
            sig = memo[1].get(entry)
            if sig is not None:
                _sig_memo_hits += 1
                return sig
    sig = _compute_signature(module, entry, keys)
    with _sig_lock:
        _sig_memo_misses += 1
        memo = _sig_memo.get(module)
        if memo is not None and memo[0] == version:
            memo[1][entry] = sig
        else:
            _sig_memo[module] = (version, {entry: sig})
    return sig


def _compute_signature(module: Module, entry: str,
                       keys: Optional[Dict]) -> Tuple:
    from ..hls.hashing import structural_key

    keys = keys or {}
    escapes_memo: Dict = {}
    globals_part = tuple(
        (gv.name, gv.linkage, tuple(gv.flat_initializer()))
        for gv in module.globals.values())
    funcs_part = []
    for func in module.functions.values():
        if func.is_declaration:
            funcs_part.append((0, func.name))
        else:
            key = keys.get(func)
            if key is None:
                key = structural_key(func, escapes_memo)
            funcs_part.append((1, func.name, key))
    return (entry, globals_part, tuple(funcs_part))


def _remap_result(result: ExecutionResult, src: Module,
                  dst: Module) -> ExecutionResult:
    """A deduped lane's result, rekeyed onto its own module's blocks.

    Equal execution signatures pin every defined function to the same
    block-list shape, so blocks align positionally per function name."""
    block_counts: Dict = {}
    for func in src.defined_functions():
        dst_func = dst.get_function(func.name)
        for sbb, dbb in zip(func.blocks, dst_func.blocks):
            count = result.block_counts.get(sbb)
            if count:
                block_counts[dbb] = count
    return ExecutionResult(
        return_value=result.return_value,
        steps=result.steps,
        block_counts=block_counts,
        call_counts=dict(result.call_counts),
        output=list(result.output),
        memory_digest=result.memory_digest,
    )


# -- lock-step machinery -------------------------------------------------------

class _Lane:
    """One representative execution inside a lock-step cohort."""

    __slots__ = ("index", "ki", "bf", "st", "prev", "allocas", "value",
                 "error", "done")

    def __init__(self, index: int, ki: KernelInterpreter, entry: str) -> None:
        self.index = index
        self.ki = ki
        self.bf = ki._bound[entry]
        self.st = ki._state
        self.prev = -1
        self.allocas: Optional[List[MemPointer]] = None
        self.value = None
        self.error: Optional[BaseException] = None
        self.done = False


class BatchedKernelExecutor:
    """Executes a wave of modules through shared compiled kernels.

    ``run_batch`` never raises for a lane failure: each lane's outcome
    is its :class:`ExecutionResult` or the exception a solo
    :class:`KernelInterpreter` run would have raised (same category,
    same message), so one failing lane cannot poison its siblings.
    """

    def __init__(self, max_steps: int = 1_000_000,
                 max_call_depth: int = 64,
                 sim_simd: Optional[str] = None) -> None:
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.sim_simd = sim_simd_mode(sim_simd)

    def run_batch(self, items: Sequence[Tuple[Module, Optional[Dict]]],
                  entry: str = "main") -> List[LaneOutcome]:
        """Execute every ``(module, structural_keys)`` lane; ``keys`` may
        be None (computed on demand, same as :class:`KernelInterpreter`)."""
        global _batch_runs, _batch_lanes, _batch_executed
        global _batch_dedup_saved, _batch_fallbacks

        n = len(items)
        outcomes: List[Optional[LaneOutcome]] = [None] * n
        with tm.span("batch_exec.run", lanes=n):
            # 1. group execution-equivalent lanes; remember each group's
            # entry-function structural key for cohort formation below
            groups: "Dict[Tuple, List[int]]" = {}
            order: List[Tuple] = []
            for i, (module, keys) in enumerate(items):
                sig = exec_signature(module, entry, keys)
                lanes = groups.get(sig)
                if lanes is None:
                    groups[sig] = [i]
                    order.append(sig)
                else:
                    lanes.append(i)
            with _stats_lock:
                _batch_runs += 1
                _batch_lanes += n
                _batch_executed += len(order)
                _batch_dedup_saved += n - len(order)
            for sig in order:
                tm.observe("batch_exec.group_size", len(groups[sig]))

            # 2. cohorts: group representatives by entry structural key —
            # lanes in one cohort share the entry kernel and run lock-step
            cohorts: "Dict[Tuple, List[int]]" = {}
            cohort_order: List[Tuple] = []
            for sig in order:
                rep = groups[sig][0]
                ekey = self._entry_key(sig, entry)
                members = cohorts.get(ekey)
                if members is None:
                    cohorts[ekey] = [rep]
                    cohort_order.append(ekey)
                else:
                    members.append(rep)

            # 3. execute representatives
            for ekey in cohort_order:
                reps = cohorts[ekey]
                if ekey is None or len(reps) == 1:
                    with _stats_lock:
                        _batch_fallbacks += len(reps)
                    tm.count("batch_exec.fallback", len(reps))
                    tm.observe("batch_exec.lanes_active", 1)
                    for rep in reps:
                        outcomes[rep] = self._run_scalar(items[rep], entry)
                else:
                    tm.observe("batch_exec.lanes_active", len(reps))
                    self._run_lockstep(reps, items, entry, outcomes)

            # 4. fan results back out to deduped lanes
            for sig in order:
                lanes = groups[sig]
                rep = lanes[0]
                result = outcomes[rep]
                for li in lanes[1:]:
                    if isinstance(result, ExecutionResult):
                        outcomes[li] = _remap_result(result, items[rep][0],
                                                     items[li][0])
                    else:
                        # equivalent failure: same object, same category
                        outcomes[li] = result
        return outcomes  # type: ignore[return-value]

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _entry_key(sig: Tuple, entry: str) -> Optional[Tuple]:
        """The entry function's structural key, or None when the entry is
        missing/declared (those lanes trap identically in _run_scalar)."""
        for part in sig[2]:
            if part[0] == 1 and part[1] == entry:
                return part[2]
        return None

    def _run_scalar(self, item: Tuple[Module, Optional[Dict]],
                    entry: str) -> LaneOutcome:
        module, keys = item
        try:
            return KernelInterpreter(
                module, max_steps=self.max_steps,
                max_call_depth=self.max_call_depth, keys=keys).run(entry)
        except Exception as exc:
            return exc

    # -- the lock-step core --------------------------------------------------
    def _run_lockstep(self, reps: List[int], items, entry: str,
                      outcomes: List[Optional[LaneOutcome]]) -> None:
        if self.sim_simd == "verify":
            # run the cohort through both tiers (independent interpreter
            # state each pass), cross-check every lane, anchor outcomes
            # to the scalar batched pass — the reference semantics
            typed: Dict[int, LaneOutcome] = {}
            scalar: Dict[int, LaneOutcome] = {}
            self._lockstep_pass(reps, items, entry, typed, True)
            self._lockstep_pass(reps, items, entry, scalar, False)
            self._verify_simd(reps, typed, scalar)
            for rep in reps:
                outcomes[rep] = scalar[rep]
            return
        sink: Dict[int, LaneOutcome] = {}
        self._lockstep_pass(reps, items, entry, sink, self.sim_simd == "on")
        for rep in reps:
            outcomes[rep] = sink[rep]

    def _lockstep_pass(self, reps: List[int], items, entry: str,
                       sink: Dict[int, LaneOutcome], use_simd: bool) -> None:
        # Per-lane setup mirrors KernelInterpreter.__init__/run exactly:
        # globals allocate in module order, every defined function binds.
        lanes: List[_Lane] = []
        for rep in reps:
            module, keys = items[rep]
            try:
                ki = KernelInterpreter(module, max_steps=self.max_steps,
                                       max_call_depth=self.max_call_depth,
                                       keys=keys)
                func = module.get_function(entry)
                if func is None or func.is_declaration:
                    raise TrapError(f"no defined entry function @{entry}")
            except Exception as exc:
                sink[rep] = exc
                continue
            lanes.append(_Lane(rep, ki, entry))
        if not lanes:
            return
        if len(lanes) == 1:
            # cohort collapsed to one live lane: the scalar kernel run it
            # would have taken anyway is the cheapest correct path
            lane = lanes[0]
            sink[lane.index] = self._run_scalar(items[lane.index], entry)
            return

        cf = lanes[0].bf.cf
        nl = len(lanes)
        # SoA register file: one dense row per lane. Rows are views, so
        # the scalar step closures write straight through to the 2-D
        # array the batched phi moves gather from.
        R = np.empty((nl, max(1, cf.nregs)), dtype=object)
        rows = [R[i] for i in range(nl)]
        # Typed tier: a dense int64 column file beside the object file.
        # Column plans gather from C unguarded for plan-defined slots, so
        # C rows parallel R rows one-to-one.
        use_cols = use_simd and cf.has_col_plans
        C = np.zeros((nl, max(1, cf.nregs)), dtype=np.int64) if use_cols \
            else None
        seg_stats = [0, 0, 0, 0] if use_simd else None

        with tm.span("batch_exec.execute", entry=entry, lanes=nl):
            self._drive(cf, lanes, R, rows, entry,
                        cf.col_plans if use_cols else None, C, seg_stats)

        if seg_stats is not None:
            self._flush_simd_stats(seg_stats)
        for lane in lanes:
            self._finish_one(lane, sink)

    @staticmethod
    def _flush_simd_stats(seg_stats: List[int]) -> None:
        global _simd_segments_vectorized, _simd_segments_scalar
        global _simd_guard_fallbacks, _simd_column_ops
        vec, scal, guards, ops = seg_stats
        with _stats_lock:
            _simd_segments_vectorized += vec
            _simd_segments_scalar += scal
            _simd_guard_fallbacks += guards
            _simd_column_ops += ops
        if vec:
            tm.count("batch_exec.simd_segments_vectorized", vec)
            tm.observe("batch_exec.simd_column_ops", ops)
        if scal:
            tm.count("batch_exec.simd_segments_scalar", scal)
        if guards:
            tm.count("batch_exec.simd_guard_fallbacks", guards)

    @staticmethod
    def _verify_simd(reps: List[int], typed: Dict[int, LaneOutcome],
                     scalar: Dict[int, LaneOutcome]) -> None:
        def fail(rep: int, what: str, a, b) -> None:
            raise VerificationError(
                f"REPRO_SIM_SIMD=verify: lane {rep} {what} diverged between "
                f"the typed tier and the scalar batched path: {a!r} != {b!r}")

        for rep in reps:
            t, s = typed[rep], scalar[rep]
            t_exc = isinstance(t, BaseException)
            s_exc = isinstance(s, BaseException)
            if t_exc != s_exc:
                fail(rep, "outcome kind", t, s)
            if t_exc:
                if _error_category(t) != _error_category(s):
                    fail(rep, "error category",
                         _error_category(t), _error_category(s))
                continue
            if t.observable() != s.observable():
                fail(rep, "observable state", t.observable(), s.observable())
            if t.steps != s.steps:
                fail(rep, "step count", t.steps, s.steps)
            if t.block_counts != s.block_counts:
                fail(rep, "block counts", t.block_counts, s.block_counts)
            if t.call_counts != s.call_counts:
                fail(rep, "call counts", t.call_counts, s.call_counts)
            if t.output != s.output:
                fail(rep, "output", t.output, s.output)

    def _finish_one(self, lane: _Lane, outcomes) -> None:
        if lane.error is not None:
            outcomes[lane.index] = lane.error
            return
        ki = lane.ki
        tm.count("kernel.steps", lane.st.steps)
        block_counts: Dict = {}
        for bf in ki._bound.values():
            for bb, count in zip(bf.src_blocks, bf.counts):
                if count:
                    block_counts[bb] = count
        outcomes[lane.index] = ExecutionResult(
            return_value=lane.value,
            steps=lane.st.steps,
            block_counts=block_counts,
            call_counts=dict(ki.call_counts),
            output=list(ki.output),
            memory_digest=ki._digest_globals(),
        )

    def _drive(self, cf, lanes: List[_Lane], R, rows, entry: str,
               col_plans: Optional[Tuple] = None, C=None,
               seg_stats: Optional[List[int]] = None) -> None:
        """The wave scheduler: one (block × batch) dispatch per wave."""
        # entry-frame prologue, identical to _BoundFunction.call
        active: List[int] = []
        for i, lane in enumerate(lanes):
            st = lane.st
            if 0 > st.max_depth:
                lane.error = InterpreterLimitExceeded(
                    f"call depth exceeded in @{lane.bf.name}")
                lane.done = True
                continue
            st.depth = 0
            cc = lane.bf.call_counts
            cc[lane.bf.name] = cc.get(lane.bf.name, 0) + 1
            if cf.alloca_slot >= 0:
                lane.allocas = []
                rows[i][cf.alloca_slot] = lane.allocas
            active.append(i)

        blocks = cf.blocks
        pending: Dict[int, List[int]] = {0: active} if active else {}

        def retire(i: int, value) -> None:
            lane = lanes[i]
            lane.value = value
            lane.done = True
            self._epilogue(lane)

        def detach(i: int, exc: BaseException) -> None:
            lane = lanes[i]
            lane.error = exc
            lane.done = True
            tm.count("batch_exec.detached")
            self._epilogue(lane)

        while pending:
            # widest wave first (ties: lowest block index) — any order is
            # correct, lanes share no mutable state
            bidx = min(pending, key=lambda b: (-len(pending[b]), b))
            wave = pending.pop(bidx)
            phi_edges, segments, term, term_counts, term_desc = blocks[bidx]
            for i in wave:
                lanes[i].bf.counts[bidx] += 1

            # -- batched phi moves, one column transfer per predecessor edge
            if phi_edges is not None:
                by_prev: Dict[int, List[int]] = {}
                for i in wave:
                    by_prev.setdefault(lanes[i].prev, []).append(i)
                for prev, ids in by_prev.items():
                    moves = phi_edges.get(prev, _MISSING)
                    if moves is _MISSING:
                        for i in ids:
                            detach(i, KeyError(prev))
                        continue
                    if type(moves) is str:
                        for i in ids:
                            detach(i, KeyError(moves))
                        continue
                    # simultaneous assignment: gather every column, then
                    # write — same read-then-write order as the scalar path
                    cols = []
                    trap_msg = None
                    for d, kind, val in moves:
                        if kind == 0:
                            cols.append((d, R[ids, val]))
                        elif kind == 1:
                            cols.append((d, val))
                        elif kind == 2:
                            cols.append((d, [lanes[i].bf.gv[val] for i in ids]))
                        else:
                            trap_msg = val
                            break
                    if trap_msg is not None:
                        for i in ids:
                            detach(i, TrapError(trap_msg))
                        continue
                    for d, vals in cols:
                        R[ids, d] = vals
                wave = [i for i in wave if not lanes[i].done]

            # -- straight-line segments: column plans over the active
            # lanes where the typed tier compiled one, op-major scalar
            # closures everywhere else
            block_plans = col_plans[bidx] if col_plans is not None else None
            for si, (nsteps, seg) in enumerate(segments):
                if not wave:
                    break
                # budget partition: lanes far from the budget pre-add the
                # whole segment; near-budget lanes take the reference's
                # per-op slow path so the raise lands on the exact step
                ctx = []
                for i in wave:
                    st = lanes[i].st
                    ns = st.steps + nsteps
                    if ns <= st.max_steps:
                        st.steps = ns
                        ctx.append((lanes[i].bf, rows[i], i))
                    else:
                        self._near_budget(lanes[i], rows[i], seg, detach, i)
                if ctx:
                    vectorized = False
                    plan = block_plans[si] if block_plans is not None else None
                    if plan is not None:
                        ids = np.fromiter((t[2] for t in ctx), dtype=np.intp,
                                          count=len(ctx))
                        if plan.execute(C, R, ids):
                            vectorized = True
                            seg_stats[0] += 1
                            seg_stats[3] += plan.nops
                        else:
                            # a gather guard saw a non-int value: run the
                            # segment through the scalar closures (exact
                            # reference semantics) and retire the plans
                            # for the rest of this drive — C would go
                            # stale, while R stays authoritative for
                            # every cross-segment operand
                            seg_stats[1] += 1
                            seg_stats[2] += 1
                            col_plans = None
                            block_plans = None
                    elif seg_stats is not None:
                        seg_stats[1] += 1
                    if not vectorized:
                        for f in seg:
                            died = False
                            for t in ctx:
                                try:
                                    f(t[0], t[1])
                                except Exception as exc:
                                    detach(t[2], exc)
                                    died = True
                            if died:
                                ctx = [t for t in ctx if not lanes[t[2]].done]
                                if not ctx:
                                    break
                wave = [i for i in wave if not lanes[i].done]

            if not wave:
                continue

            # -- terminator: one step of budget, then one decode per wave
            if term_counts:
                survivors = []
                for i in wave:
                    st = lanes[i].st
                    s = st.steps + 1
                    if s > st.max_steps:
                        detach(i, StepBudgetExceeded(
                            f"step budget exhausted in @{lanes[i].bf.name}"))
                    else:
                        st.steps = s
                        survivors.append(i)
                wave = survivors

            def advance(i: int, nxt: int) -> None:
                lanes[i].prev = bidx
                bucket = pending.get(nxt)
                if bucket is None:
                    pending[nxt] = [i]
                else:
                    bucket.append(i)

            if term_desc is None:
                # invoke / trapping or generic terminators: scalar closure
                for i in wave:
                    try:
                        transfer = term(lanes[i].bf, rows[i])
                    except Exception as exc:
                        detach(i, exc)
                        continue
                    if type(transfer) is int:
                        advance(i, transfer)
                    else:
                        retire(i, transfer[1])
                continue
            op = term_desc[0]
            if op == "br":
                nxt = term_desc[1]
                for i in wave:
                    advance(i, nxt)
            elif op == "cbr":
                _, slot, t, f = term_desc
                for i in wave:
                    advance(i, t if rows[i][slot] else f)
            elif op == "switch":
                _, slot, table, default = term_desc
                for i in wave:
                    try:
                        nxt = table.get(int(rows[i][slot]), default)
                    except Exception as exc:
                        detach(i, exc)
                        continue
                    advance(i, nxt)
            elif op == "ret_reg":
                slot = term_desc[1]
                for i in wave:
                    retire(i, rows[i][slot])
            else:  # ret_const
                value = term_desc[1]
                for i in wave:
                    retire(i, value)

    @staticmethod
    def _near_budget(lane: _Lane, row, seg, detach, i: int) -> None:
        """Reference increment order for a lane within one segment of its
        step budget: count-check-execute per op, raising on the exact
        step the solo run would."""
        st = lane.st
        bf = lane.bf
        try:
            for f in seg:
                s = st.steps + 1
                if s > st.max_steps:
                    raise StepBudgetExceeded(
                        f"step budget exhausted in @{bf.name}")
                st.steps = s
                f(bf, row)
        except Exception as exc:
            detach(i, exc)

    @staticmethod
    def _epilogue(lane: _Lane) -> None:
        """Entry-frame unwind, identical to _BoundFunction.call's finally:
        restore depth, free this frame's allocas (lane memory only — a
        detaching lane never touches its siblings)."""
        lane.st.depth = -1
        if lane.allocas:
            free = lane.bf.mem.free
            for ptr in lane.allocas:
                free(ptr)
