"""Typed SIMD tier for lock-step batched simulation.

PR 8's lock-step executor runs same-kernel lanes over a ``dtype=object``
register file, so every integer add/icmp in a wave still costs one
Python closure call per lane. This module adds a *typed column* tier
underneath it:

* **Slot classing** — at kernel-compile time each register slot is
  classified *int-expected* (its static type pins it to ``iN``, N <= 64:
  integer ALU/compare results unconditionally; phi/select/bitcast by a
  pessimistic fixpoint; int-typed loads and calls with a runtime guard)
  or *object* (pointers, floats, allocas, everything else).
* **Column plans** — a block segment whose every instruction is an
  integer binop / icmp / select / int-to-int cast over int-expected
  operands is *vectorizable*: it compiles to a :class:`ColumnPlan` that
  gathers operand columns once, runs one numpy ``int64`` column op per
  instruction across all active lanes, and scatters results back.
* **Scalar-exact semantics** — the IR's C wrap semantics
  (:mod:`repro.ir.folding`: mask to width + sign adjust, signed division
  truncating toward zero, division by zero yielding 0, shift amounts mod
  width) are closed under ``int64`` arithmetic mod 2^64, so the column
  emitters below are bit-identical to the scalar closures; the parity is
  pinned per opcode x width x boundary value by ``tests/test_simd.py``.

Invariants the emitters rely on (and preserve): every value in a column
is the *canonical* signed representative of its width (what
``IntType.wrap`` produces), and every gather from the object register
file is guarded — any non-``int`` runtime value (pointer, float, None
from an undefined path) falls the whole wave-segment back to the scalar
closures, which implement the full semantics.

``REPRO_SIM_SIMD=off|on|verify`` gates the tier (see
:func:`sim_simd_mode`); like ``REPRO_SIM_KERNELS``/``REPRO_SIM_BATCH``
the mode is bit-identity-neutral and stays out of every cache key and
toolchain fingerprint.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..ir import types as ty
from ..ir.folding import eval_cast, eval_icmp, eval_int_binop
from ..ir.instructions import (
    FLOAT_BINOPS,
    BinaryOperator,
    CallInst,
    CastInst,
    FCmpInst,
    ICmpInst,
    InvokeInst,
    LoadInst,
    PhiNode,
    SelectInst,
)

__all__ = ["sim_simd_mode", "ColumnPlan", "compile_plans",
           "column_binop_fn", "column_icmp_fn", "column_cast_fn"]

# Operand descriptor kinds produced by _FunctionCompiler._operand.
# Defined here (the leaf module) and imported by interp.kernels so the
# two stay a single definition.
_K_REG = 0     # val = register slot index
_K_CONST = 1   # val = folded Python constant
_K_GLOBAL = 2  # val = index into the per-execution global-pointer table
_K_TRAP = 3    # val = TrapError message (use of the value traps)

_I64 = np.int64
_U64 = np.uint64
_U64_MASK = (1 << 64) - 1
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_CAST_OPS = ("trunc", "sext", "zext")


def sim_simd_mode(override: Optional[str] = None) -> str:
    """Resolve the typed-SIMD toggle: ``off`` (scalar batched closures),
    ``on`` (column plans over vectorizable segments, the default), or
    ``verify`` (run every lock-step cohort both ways, hard-fail on any
    divergence). Mirrors the ``REPRO_SIM_KERNELS``/``REPRO_SIM_BATCH``
    contract: backends are bit-identical, so the mode stays out of every
    cache key and toolchain fingerprint."""
    mode = override if override is not None else os.environ.get("REPRO_SIM_SIMD", "on")
    mode = mode.strip().lower()
    if mode not in ("off", "on", "verify"):
        raise ValueError(f"REPRO_SIM_SIMD must be off|on|verify, got {mode!r}")
    return mode


# -- column emitters ----------------------------------------------------------
# Each factory returns ``f(a, b)`` / ``f(v)`` over int64 columns. Operands
# are int64 arrays or canonical Python-int constants (never both constant
# — those fold at plan-compile time), results are int64 arrays of
# canonical width-N values. numpy int64 arithmetic wraps mod 2^64
# silently, and 2^N divides 2^64 for N <= 64, so masking the wrapped
# result to N bits is exact.

def _u64(v):
    """Reinterpret a canonical int64 column (or Python int) as uint64."""
    if type(v) is int:
        return _U64(v & _U64_MASK)
    return v.view(_U64)


def _mag64(v):
    """|v| as a uint64 column; exact for INT64_MIN where np.abs wraps."""
    if type(v) is int:
        return _U64(abs(v) & _U64_MASK)
    return np.where(v >= 0, v, -v).view(_U64)


def _neg(v):
    return v < 0


def _wrap_fn(bits: int):
    """The column form of ``IntType.wrap``: mask to width, then flip the
    sign bit down (``((v & mask) ^ half) - half``). i1 keeps 0/1."""
    if bits >= 64:
        return lambda v: v
    if bits == 1:
        return lambda v: v & 1
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    return lambda v: ((v & mask) ^ half) - half


def column_binop_fn(opcode: str, bits: int):
    """Column twin of :func:`repro.ir.folding.int_binop_fn` for ``iN``."""
    wrap = _wrap_fn(bits)
    if opcode == "add":
        return lambda a, b: wrap(a + b)
    if opcode == "sub":
        return lambda a, b: wrap(a - b)
    if opcode == "mul":
        return lambda a, b: wrap(a * b)
    if opcode == "and":
        return lambda a, b: wrap(a & b)
    if opcode == "or":
        return lambda a, b: wrap(a | b)
    if opcode == "xor":
        return lambda a, b: wrap(a ^ b)
    if bits == 64:
        if opcode == "shl":
            def shl64(a, b):
                amt = _u64(b) % _U64(64)
                return (_u64(a) << amt).view(_I64)
            return shl64
        if opcode == "lshr":
            def lshr64(a, b):
                amt = _u64(b) % _U64(64)
                return (_u64(a) >> amt).view(_I64)
            return lshr64
        if opcode == "ashr":
            def ashr64(a, b):
                amt = (_u64(b) % _U64(64)).view(_I64)
                return a >> amt
            return ashr64
        if opcode == "udiv":
            def udiv64(a, b):
                ua, ub = _u64(a), _u64(b)
                zero = ub == 0
                q = (ua // np.where(zero, _U64(1), ub)).view(_I64)
                return np.where(zero, 0, q)
            return udiv64
        if opcode == "urem":
            def urem64(a, b):
                ua, ub = _u64(a), _u64(b)
                zero = ub == 0
                r = (ua % np.where(zero, _U64(1), ub)).view(_I64)
                return np.where(zero, 0, r)
            return urem64
        if opcode == "sdiv":
            def sdiv64(a, b):
                ua, ub = _mag64(a), _mag64(b)
                zero = ub == 0
                q = (ua // np.where(zero, _U64(1), ub)).view(_I64)
                q = np.where(_neg(a) != _neg(b), -q, q)
                return np.where(zero, 0, q)
            return sdiv64
        if opcode == "srem":
            def srem64(a, b):
                ua, ub = _mag64(a), _mag64(b)
                zero = ub == 0
                q = (ua // np.where(zero, _U64(1), ub)).view(_I64)
                q = np.where(_neg(a) != _neg(b), -q, q)
                # a - b*q wraps mod 2^64, which IS the 64-bit semantics
                return np.where(zero, 0, a - b * q)
            return srem64
    else:
        mask = (1 << bits) - 1
        if opcode == "shl":
            return lambda a, b: wrap((a & mask) << ((b & mask) % bits))
        if opcode == "lshr":
            return lambda a, b: wrap((a & mask) >> ((b & mask) % bits))
        if opcode == "ashr":
            # canonical in, canonical out: arithmetic shift needs no wrap
            return lambda a, b: a >> ((b & mask) % bits)
        if opcode == "udiv":
            def udiv(a, b):
                ua, ub = a & mask, b & mask
                zero = ub == 0
                q = ua // np.where(zero, 1, ub)
                return wrap(np.where(zero, 0, q))
            return udiv
        if opcode == "urem":
            def urem(a, b):
                ua, ub = a & mask, b & mask
                zero = ub == 0
                r = ua % np.where(zero, 1, ub)
                return wrap(np.where(zero, 0, r))
            return urem
        if opcode == "sdiv":
            def sdiv(a, b):
                ua, ub = np.abs(a), np.abs(b)  # canonical iN, N<64: no overflow
                zero = ub == 0
                q = ua // np.where(zero, 1, ub)
                q = np.where(_neg(a) != _neg(b), -q, q)
                return wrap(np.where(zero, 0, q))
            return sdiv
        if opcode == "srem":
            def srem(a, b):
                ua, ub = np.abs(a), np.abs(b)
                zero = ub == 0
                q = ua // np.where(zero, 1, ub)
                q = np.where(_neg(a) != _neg(b), -q, q)
                return wrap(np.where(zero, 0, a - b * q))
            return srem
    raise ValueError(f"unknown integer binop: {opcode}")


def column_icmp_fn(pred: str, bits: int):
    """Column twin of :func:`repro.ir.folding.icmp_fn` (int operands
    only — pointer compares never reach a column plan), yielding 0/1."""
    if pred == "eq":
        return lambda a, b: (a == b).astype(_I64)
    if pred == "ne":
        return lambda a, b: (a != b).astype(_I64)
    if pred == "slt":
        return lambda a, b: (a < b).astype(_I64)
    if pred == "sle":
        return lambda a, b: (a <= b).astype(_I64)
    if pred == "sgt":
        return lambda a, b: (a > b).astype(_I64)
    if pred == "sge":
        return lambda a, b: (a >= b).astype(_I64)
    if bits == 64:
        if pred == "ult":
            return lambda a, b: (_u64(a) < _u64(b)).astype(_I64)
        if pred == "ule":
            return lambda a, b: (_u64(a) <= _u64(b)).astype(_I64)
        if pred == "ugt":
            return lambda a, b: (_u64(a) > _u64(b)).astype(_I64)
        if pred == "uge":
            return lambda a, b: (_u64(a) >= _u64(b)).astype(_I64)
    else:
        mask = (1 << bits) - 1
        if pred == "ult":
            return lambda a, b: ((a & mask) < (b & mask)).astype(_I64)
        if pred == "ule":
            return lambda a, b: ((a & mask) <= (b & mask)).astype(_I64)
        if pred == "ugt":
            return lambda a, b: ((a & mask) > (b & mask)).astype(_I64)
        if pred == "uge":
            return lambda a, b: ((a & mask) >= (b & mask)).astype(_I64)
    raise ValueError(f"unknown icmp predicate: {pred}")


def column_cast_fn(opcode: str, src_bits: int, dest_bits: int):
    """Column twin of :func:`repro.ir.folding.cast_fn` for the int-to-int
    casts (``trunc``/``sext``/``zext``/``bitcast``)."""
    wrap = _wrap_fn(dest_bits)
    if opcode in ("trunc", "sext", "bitcast"):
        # canonical source values fit int64; dest wrap is the whole op
        # (identity at dest width 64, where |v| < 2^63 already holds)
        return wrap
    if opcode == "zext":
        if src_bits == 64:
            if dest_bits == 64:
                return lambda v: v
            # degenerate narrowing zext: v mod 2^64 mod 2^dest == v mod 2^dest
            return wrap
        smask = (1 << src_bits) - 1
        return lambda v: wrap(v & smask)
    raise ValueError(f"unsupported column cast: {opcode}")


# -- slot classing ------------------------------------------------------------

def _int_type(t) -> bool:
    return isinstance(t, ty.IntType) and t.bits <= 64


def _const_i64(val) -> bool:
    return type(val) is int and _I64_MIN <= val <= _I64_MAX


def _operand_int(fc, v, expected: Set[int]) -> bool:
    kind, val = fc._operand(v)
    if kind == _K_REG:
        return val in expected
    if kind == _K_CONST:
        return _const_i64(val)
    return False


def _int_expected_slots(fc) -> Set[int]:
    """Slots whose runtime value is an ``iN`` (N <= 64) Python int —
    guaranteed for ALU/compare/cast results (their closures coerce), and
    *expected* for int-typed loads/calls, where the per-gather type guard
    covers the residual uncertainty (untyped memory, externals)."""
    slots = fc.slots
    expected: Set[int] = set()
    passthrough = []  # select/phi/bitcast: int iff every source is
    for bb in fc.func.blocks:
        for inst in bb.instructions:
            s = slots.get(inst)
            if s is None:
                continue
            if isinstance(inst, BinaryOperator):
                if inst.opcode not in FLOAT_BINOPS and _int_type(inst.type):
                    expected.add(s)
            elif isinstance(inst, (ICmpInst, FCmpInst)):
                expected.add(s)  # compare closures always produce 0/1
            elif isinstance(inst, CastInst):
                if inst.opcode in ("trunc", "sext", "zext", "fptosi") \
                        and _int_type(inst.type):
                    expected.add(s)
                elif inst.opcode == "bitcast" and _int_type(inst.type):
                    passthrough.append((s, (inst.operand,)))
            elif isinstance(inst, (LoadInst, CallInst, InvokeInst)):
                if _int_type(inst.type):
                    expected.add(s)  # guarded at gather time
            elif isinstance(inst, SelectInst):
                if _int_type(inst.type):
                    passthrough.append(
                        (s, (inst.true_value, inst.false_value)))
            elif isinstance(inst, PhiNode):
                if _int_type(inst.type) and inst.operands:
                    passthrough.append((s, inst.operands))
    # pessimistic fixpoint over the pass-through instructions
    changed = True
    while changed:
        changed = False
        for s, sources in passthrough:
            if s in expected:
                continue
            if all(_operand_int(fc, v, expected) for v in sources):
                expected.add(s)
                changed = True
    return expected


def _vectorizable(fc, inst, expected: Set[int]) -> bool:
    """True when the instruction is a total integer op whose column form
    is bit-exact: int binop / icmp over ints / select / int-int cast,
    every operand a canonical-int constant or an int-expected slot."""
    op = _operand_int
    if isinstance(inst, BinaryOperator):
        return (inst.opcode not in FLOAT_BINOPS and _int_type(inst.type)
                and op(fc, inst.lhs, expected) and op(fc, inst.rhs, expected))
    if isinstance(inst, ICmpInst):
        return (_int_type(inst.lhs.type)
                and op(fc, inst.lhs, expected) and op(fc, inst.rhs, expected))
    if isinstance(inst, SelectInst):
        return (_int_type(inst.type)
                and op(fc, inst.condition, expected)
                and op(fc, inst.true_value, expected)
                and op(fc, inst.false_value, expected))
    if isinstance(inst, CastInst):
        return (inst.opcode in _CAST_OPS + ("bitcast",)
                and _int_type(inst.type) and _int_type(inst.operand.type)
                and op(fc, inst.operand, expected))
    return False


# -- plan representation and execution ----------------------------------------

# Gather kinds for ColumnPlan.loads
_FROM_COL = 0   # unguarded: the column file is authoritative for the slot
_FROM_ROW = 1   # guarded gather from the object register file


class ColumnPlan:
    """One vectorizable segment lowered to columns: gather external
    operands (guarded when coming from object rows), run one column op
    per instruction over plan-local temporaries, scatter results to the
    column file (for later plans) and the object rows (for scalar
    consumers, terminators, phis, and near-budget replays).

    ``execute`` is all-or-nothing: every guard runs before any state is
    written, so a ``False`` return (a non-int runtime value in a gather)
    leaves both register files untouched and the caller re-runs the
    segment through the scalar closures."""

    __slots__ = ("loads", "steps", "stores", "nlocals", "nops")

    def __init__(self, loads: Tuple, steps: Tuple, stores: Tuple,
                 nlocals: int, nops: int) -> None:
        self.loads = loads
        self.steps = steps
        self.stores = stores
        self.nlocals = nlocals
        self.nops = nops

    def execute(self, C, R, ids) -> bool:
        vals: List = [None] * self.nlocals
        for kind, s, li in self.loads:
            if kind == _FROM_COL:
                vals[li] = C[ids, s]
            else:
                col = R[ids, s]
                for x in col:
                    if type(x) is not int or x > _I64_MAX or x < _I64_MIN:
                        return False
                vals[li] = col.astype(_I64)
        for step in self.steps:
            step(vals)
        for is_const, src, s, to_col, to_row in self.stores:
            v = src if is_const else vals[src]
            if to_col:
                C[ids, s] = v
            if to_row:
                R[ids, s] = v  # numpy converts int64 cells to Python ints
        return True


def _binary_col_step(fn, a, b, d):
    ak, av = a
    bk, bv = b
    if ak == "l" and bk == "l":
        def step(vals, _f=fn, _a=av, _b=bv, _d=d):
            vals[_d] = _f(vals[_a], vals[_b])
    elif ak == "l":
        def step(vals, _f=fn, _a=av, _b=bv, _d=d):
            vals[_d] = _f(vals[_a], _b)
    else:
        def step(vals, _f=fn, _a=av, _b=bv, _d=d):
            vals[_d] = _f(_a, vals[_b])
    return step


def _unary_col_step(fn, a, d):
    def step(vals, _f=fn, _a=a[1], _d=d):
        vals[_d] = _f(vals[_a])
    return step


def _select_col_step(c, t, f, d):
    # the scalar path evaluates only the taken arm, but column arms are
    # consts/registers — total, effect-free — so evaluating both is exact
    def step(vals, _c=c, _t=t, _f=f, _d=d):
        cond = vals[_c[1]] if _c[0] == "l" else _c[1]
        tv = vals[_t[1]] if _t[0] == "l" else _t[1]
        fv = vals[_f[1]] if _f[0] == "l" else _f[1]
        vals[_d] = np.where(cond != 0, tv, fv)
    return step


# -- whole-function plan compilation ------------------------------------------

def compile_plans(fc):
    """Column plans for every vectorizable segment of ``fc`` (a
    ``_FunctionCompiler`` that has recorded ``block_layouts``), shaped
    ``tuple[block] -> None | tuple[segment] -> None | ColumnPlan`` so the
    batch executor indexes them exactly like ``CompiledFunction.blocks``.
    Returns None when no segment vectorizes."""
    layouts = fc.block_layouts
    slots = fc.slots
    expected = _int_expected_slots(fc)

    vec: List[Tuple[int, int, List]] = []
    for bi, (_phis, seg_insts, _term) in enumerate(layouts):
        for si, insts in enumerate(seg_insts):
            if insts and all(_vectorizable(fc, inst, expected)
                             for inst in insts):
                vec.append((bi, si, insts))
    if not vec:
        return None
    vec_ids = {(bi, si) for bi, si, _ in vec}

    # column residency: slots defined by a vectorized segment are always
    # written to the column file when another plan reads them
    col_resident: Set[int] = set()
    for _bi, _si, insts in vec:
        for inst in insts:
            col_resident.add(slots[inst])

    row_visible = _row_visible(fc, layouts, vec_ids)

    # which column-resident slots some plan reads from outside its own
    # segment — only those need a column store at their definition
    col_read: Set[int] = set()
    for _bi, _si, insts in vec:
        defined: Set[int] = set()
        for inst in insts:
            for v in inst.operands:
                s = slots.get(v)
                if s is not None and s not in defined and s in col_resident:
                    col_read.add(s)
            defined.add(slots[inst])

    plans: Dict[Tuple[int, int], ColumnPlan] = {}
    for bi, si, insts in vec:
        plans[(bi, si)] = _build_plan(fc, insts, col_resident, col_read,
                                      row_visible)

    out: List[Optional[Tuple]] = []
    for bi, (_phis, seg_insts, _term) in enumerate(layouts):
        if any((bi, si) in plans for si in range(len(seg_insts))):
            out.append(tuple(plans.get((bi, si))
                             for si in range(len(seg_insts))))
        else:
            out.append(None)
    return tuple(out)


def _row_visible(fc, layouts, vec_ids) -> Set[int]:
    """Slots whose value must live in the object register file: read by
    phis, terminators, or any scalar-executed instruction — including
    every out-of-segment operand of vectorized instructions, because a
    near-budget lane replays its segment through the scalar closures."""
    slots = fc.slots
    visible: Set[int] = set()

    def note(v) -> None:
        s = slots.get(v)
        if s is not None:
            visible.add(s)

    for bi, (phis, seg_insts, term) in enumerate(layouts):
        for phi in phis:
            for v in phi.operands:
                note(v)
        if term is not None:
            for v in term.operands:
                note(v)
        for si, insts in enumerate(seg_insts):
            if (bi, si) in vec_ids:
                defined: Set[int] = set()
                for inst in insts:
                    for v in inst.operands:
                        s = slots.get(v)
                        if s is not None and s not in defined:
                            visible.add(s)
                    defined.add(slots[inst])
            else:
                for inst in insts:
                    for v in inst.operands:
                        note(v)
    return visible


def _build_plan(fc, insts, col_resident, col_read, row_visible) -> ColumnPlan:
    slots = fc.slots
    loads: List[Tuple[int, int, int]] = []
    steps: List = []
    local_of: Dict[int, int] = {}
    consts: Dict[int, int] = {}  # segment-defined slots folded to constants
    defs: List[Tuple[int, Tuple]] = []  # (slot, ('c', const) | ('l', local))
    nlocals = 0

    def operand(v) -> Tuple[str, object]:
        nonlocal nlocals
        kind, val = fc._operand(v)
        if kind == _K_CONST:
            return ("c", val)
        s = val
        if s in consts:
            return ("c", consts[s])
        li = local_of.get(s)
        if li is None:
            li = local_of[s] = nlocals
            nlocals += 1
            loads.append((_FROM_COL if s in col_resident else _FROM_ROW,
                          s, li))
        return ("l", li)

    def define(s: int, desc: Tuple) -> None:
        if desc[0] == "c":
            consts[s] = desc[1]
        else:
            local_of[s] = desc[1]
        defs.append((s, desc))

    def fresh(s: int) -> int:
        nonlocal nlocals
        li = nlocals
        nlocals += 1
        local_of[s] = li
        consts.pop(s, None)
        return li

    for inst in insts:
        s = slots[inst]
        if isinstance(inst, BinaryOperator):
            a, b = operand(inst.lhs), operand(inst.rhs)
            if a[0] == "c" and b[0] == "c":
                define(s, ("c", eval_int_binop(inst.opcode, inst.type,
                                               a[1], b[1])))
                continue
            d = fresh(s)
            steps.append(_binary_col_step(
                column_binop_fn(inst.opcode, inst.type.bits), a, b, d))
            defs.append((s, ("l", d)))
        elif isinstance(inst, ICmpInst):
            a, b = operand(inst.lhs), operand(inst.rhs)
            if a[0] == "c" and b[0] == "c":
                define(s, ("c", int(eval_icmp(inst.predicate, inst.lhs.type,
                                              a[1], b[1]))))
                continue
            d = fresh(s)
            steps.append(_binary_col_step(
                column_icmp_fn(inst.predicate, inst.lhs.type.bits), a, b, d))
            defs.append((s, ("l", d)))
        elif isinstance(inst, SelectInst):
            c = operand(inst.condition)
            t = operand(inst.true_value)
            f = operand(inst.false_value)
            if c[0] == "c":
                define(s, t if c[1] else f)
                continue
            if t[0] == "c" and f[0] == "c" and t[1] == f[1]:
                define(s, t)
                continue
            d = fresh(s)
            steps.append(_select_col_step(c, t, f, d))
            defs.append((s, ("l", d)))
        else:  # CastInst (trunc/sext/zext/bitcast)
            v = operand(inst.operand)
            if v[0] == "c":
                define(s, ("c", eval_cast(inst.opcode, inst.operand.type,
                                          inst.type, v[1])))
                continue
            if inst.opcode == "bitcast":
                define(s, v)  # int-to-int bitcast is the identity
                continue
            d = fresh(s)
            steps.append(_unary_col_step(
                column_cast_fn(inst.opcode, inst.operand.type.bits,
                               inst.type.bits), v, d))
            defs.append((s, ("l", d)))

    stores: List[Tuple[bool, object, int, bool, bool]] = []
    seen: Set[int] = set()
    for s, desc in defs:
        if s in seen:  # SSA: single def per slot, but stay defensive
            continue
        seen.add(s)
        to_col = s in col_read
        to_row = s in row_visible
        if to_col or to_row:
            stores.append((desc[0] == "c", desc[1], s, to_col, to_row))

    return ColumnPlan(tuple(loads), tuple(steps), tuple(stores),
                      nlocals, len(steps))
