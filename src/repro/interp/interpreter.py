"""The repro-IR interpreter.

Runs a module's entry function and records the *software trace* LegUp's
clock-cycle profiler consumes: how many times each basic block executed
and how many times each function was called. Also returns the pieces
differential testing compares — return value, observable output, and a
digest of global memory.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .. import telemetry as tm
from ..ir import types as ty
from ..ir.folding import eval_cast, eval_fcmp, eval_float_binop, eval_icmp, eval_int_binop
from ..ir.instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    Instruction,
    InvokeInst,
    LoadInst,
    PhiNode,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
    Value,
)
from .externals import call_external
from .state import InterpreterLimitExceeded, Memory, MemPointer, StepBudgetExceeded, TrapError

__all__ = ["ExecutionResult", "Interpreter", "run_module",
           "plan_cache_info", "clear_plan_cache"]

Scalar = Union[int, float, MemPointer, None]

# -- cross-instance block-plan cache ------------------------------------------
# A block plan's handler bindings depend only on the instruction-class
# sequence, which the structural body hash pins positionally — so plans
# built for one Interpreter transfer to any later instance executing a
# structurally identical function (clones, pass-untouched functions). The
# cache stores the module-independent skeleton (phi count + handler tuple
# per block); each Interpreter zips it with its own instruction objects.
_PLAN_CACHE_SIZE = 1024
_plan_cache: "OrderedDict[Tuple, List[Tuple[int, Tuple]]]" = OrderedDict()
_plan_lock = threading.Lock()
_plan_hits = 0
_plan_misses = 0


def plan_cache_info() -> Dict[str, int]:
    with _plan_lock:
        return {"plan_entries": len(_plan_cache), "plan_hits": _plan_hits,
                "plan_misses": _plan_misses}


def clear_plan_cache() -> None:
    global _plan_hits, _plan_misses
    with _plan_lock:
        _plan_cache.clear()
        _plan_hits = _plan_misses = 0


@dataclass
class ExecutionResult:
    """Everything observable about one program execution."""

    return_value: Scalar
    steps: int
    block_counts: Dict[BasicBlock, int]
    call_counts: Dict[str, int]
    output: List[int]
    memory_digest: int

    def observable(self) -> Tuple:
        """The tuple that must be invariant under optimization passes."""
        rv = self.return_value
        if isinstance(rv, float):
            if math.isnan(rv):
                rv = "nan"
            else:
                rv = round(rv, 9)
        if isinstance(rv, MemPointer):
            rv = ("ptr", rv.offset)  # segment ids are not stable across runs
        return (rv, tuple(self.output), self.memory_digest)


class _Frame:
    __slots__ = ("values", "allocas")

    def __init__(self) -> None:
        self.values: Dict[Value, Scalar] = {}
        self.allocas: List[MemPointer] = []


class Interpreter:
    """Executes one module. Construct fresh per execution."""

    def __init__(self, module: Module, max_steps: int = 1_000_000, max_call_depth: int = 64,
                 plan_keys: Optional[Dict[Function, Tuple]] = None) -> None:
        self.module = module
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        # structural body hash per function (when the caller — typically the
        # profiler — already computed them); unlocks the cross-instance
        # block-plan cache. Without keys, plans are built lazily as before.
        self._plan_keys = plan_keys or {}
        self.memory = Memory()
        self.steps = 0
        self.block_counts: Dict[BasicBlock, int] = {}
        self.call_counts: Dict[str, int] = {}
        self.output: List[int] = []
        # Per-block execution plans: (phis, [(handler, inst), ...]). The
        # module is static for the lifetime of one interpreter, so handler
        # bindings are computed once per block instead of running an
        # isinstance chain per executed instruction.
        self._block_plans: Dict[BasicBlock, Tuple[List[PhiNode], List[Tuple]]] = {}
        self._globals: Dict[GlobalVariable, MemPointer] = {}
        # Only externally visible globals are *observable* memory: internal
        # globals are like locals (LLVM may delete or fold them), so the
        # differential-testing digest must not depend on their presence.
        self._observable_segments: List[Tuple[str, int]] = []
        for gv in module.globals.values():
            ptr = self.memory.allocate_init(gv.flat_initializer())
            self._globals[gv] = ptr
            if gv.linkage != "internal":
                self._observable_segments.append((gv.name, ptr.segment))

    # -- entry point -------------------------------------------------------
    def run(self, entry: str = "main", args: Optional[List[Scalar]] = None) -> ExecutionResult:
        func = self.module.get_function(entry)
        if func is None or func.is_declaration:
            raise TrapError(f"no defined entry function @{entry}")
        with tm.span("interp.execute", entry=entry):
            rv = self._call_function(func, list(args or []), depth=0)
        tm.count("interp.steps", self.steps)
        return ExecutionResult(
            return_value=rv,
            steps=self.steps,
            block_counts=dict(self.block_counts),
            call_counts=dict(self.call_counts),
            output=list(self.output),
            memory_digest=self._digest_globals(),
        )

    def _digest_globals(self) -> int:
        items = []
        for name, seg in sorted(self._observable_segments):
            values = self.memory.segment_values(seg)
            items.append((name, hash(tuple(round(v, 9) if isinstance(v, float) else v
                                           for v in values))))
        return hash(tuple(items))

    # -- evaluation --------------------------------------------------------------
    def _value(self, frame: _Frame, v: Value) -> Scalar:
        if isinstance(v, ConstantInt):
            return v.value
        if isinstance(v, ConstantFloat):
            return v.value
        if isinstance(v, UndefValue):
            return 0.0 if v.type.is_float else 0
        if isinstance(v, GlobalVariable):
            return self._globals[v]
        if isinstance(v, Function):
            raise TrapError("function pointers are not executable values")
        if v in frame.values:
            return frame.values[v]
        raise TrapError(f"use of undefined value %{v.name}")

    def _call_function(self, func: Function, args: List[Scalar], depth: int) -> Scalar:
        if depth > self.max_call_depth:
            raise InterpreterLimitExceeded(f"call depth exceeded in @{func.name}")
        self.call_counts[func.name] = self.call_counts.get(func.name, 0) + 1
        frame = _Frame()
        for formal, actual in zip(func.args, args):
            frame.values[formal] = actual

        block = func.entry
        prev_block: Optional[BasicBlock] = None
        try:
            while True:
                self.block_counts[block] = self.block_counts.get(block, 0) + 1
                transfer = self._run_block(func, frame, block, prev_block, depth)
                if transfer[0] == "ret":
                    return transfer[1]
                prev_block, block = block, transfer[1]
        finally:
            for ptr in frame.allocas:
                self.memory.free(ptr)

    def _run_block(self, func: Function, frame: _Frame, block: BasicBlock,
                   prev_block: Optional[BasicBlock], depth: int):
        plan = self._block_plans.get(block)
        if plan is None:
            key = self._plan_keys.get(func)
            if key is not None:
                self._bind_function_plans(func, key)
                plan = self._block_plans.get(block)
            if plan is None:
                phis = block.phis()
                plan = (phis, [(self._handler_for(inst.__class__), inst)
                               for inst in block.instructions[len(phis):]])
                self._block_plans[block] = plan
        phis, body = plan

        # Phis first, evaluated simultaneously from the predecessor edge.
        if phis:
            assert prev_block is not None, "phi in entry block"
            staged = [(phi, self._value(frame, phi.incoming_value_for(prev_block))) for phi in phis]
            for phi, value in staged:
                frame.values[phi] = value

        for handler, inst in body:
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepBudgetExceeded(f"step budget exhausted in @{func.name}")
            result = handler(self, frame, inst, depth)
            if result is not None:
                return result
        raise TrapError(f"block {block.name} fell through without terminator")

    def _bind_function_plans(self, func: Function, key: Tuple) -> None:
        """Populate every block plan of ``func`` from the cross-instance
        skeleton cache (building and caching the skeleton on a miss)."""
        global _plan_hits, _plan_misses
        with _plan_lock:
            skeleton = _plan_cache.get(key)
            if skeleton is not None:
                _plan_cache.move_to_end(key)
                _plan_hits += 1
        if skeleton is None:
            skeleton = []
            for bb in func.blocks:
                n_phis = len(bb.phis())
                skeleton.append((n_phis, tuple(self._handler_for(inst.__class__)
                                               for inst in bb.instructions[n_phis:])))
            with _plan_lock:
                _plan_misses += 1
                _plan_cache[key] = skeleton
                while len(_plan_cache) > _PLAN_CACHE_SIZE:
                    _plan_cache.popitem(last=False)
        for bb, (n_phis, handlers) in zip(func.blocks, skeleton):
            self._block_plans[bb] = (list(bb.instructions[:n_phis]),
                                     list(zip(handlers, bb.instructions[n_phis:])))

    # -- instruction handlers (opcode-indexed dispatch) --------------------
    # Handlers share the _execute contract: mutate the frame and return
    # None, or return a ("ret", value) / ("br", block) control transfer.
    def _exec_binary(self, frame: _Frame, inst: Instruction, depth: int):
        a = self._value(frame, inst.lhs)
        b = self._value(frame, inst.rhs)
        if inst.opcode in ("fadd", "fsub", "fmul", "fdiv"):
            frame.values[inst] = eval_float_binop(inst.opcode, float(a), float(b))
        else:
            frame.values[inst] = eval_int_binop(inst.opcode, inst.type, int(a), int(b))
        return None

    def _exec_fneg(self, frame: _Frame, inst: Instruction, depth: int):
        frame.values[inst] = -float(self._value(frame, inst.operand))
        return None

    def _exec_icmp(self, frame: _Frame, inst: Instruction, depth: int):
        a = self._value(frame, inst.lhs)
        b = self._value(frame, inst.rhs)
        if isinstance(a, MemPointer) or isinstance(b, MemPointer):
            res = self._pointer_compare(inst.predicate, a, b)
        else:
            res = eval_icmp(inst.predicate, inst.lhs.type, int(a), int(b))  # type: ignore[arg-type]
        frame.values[inst] = 1 if res else 0
        return None

    def _exec_fcmp(self, frame: _Frame, inst: Instruction, depth: int):
        a = float(self._value(frame, inst.lhs))
        b = float(self._value(frame, inst.rhs))
        frame.values[inst] = 1 if eval_fcmp(inst.predicate, a, b) else 0
        return None

    def _exec_select(self, frame: _Frame, inst: Instruction, depth: int):
        cond = self._value(frame, inst.condition)
        frame.values[inst] = self._value(frame, inst.true_value if cond else inst.false_value)
        return None

    def _exec_alloca(self, frame: _Frame, inst: Instruction, depth: int):
        ptr = self.memory.allocate(inst.allocated_type.size_slots)
        frame.allocas.append(ptr)
        frame.values[inst] = ptr
        return None

    def _exec_load(self, frame: _Frame, inst: Instruction, depth: int):
        ptr = self._value(frame, inst.pointer)
        if not isinstance(ptr, MemPointer):
            raise TrapError("load through non-pointer")
        frame.values[inst] = self.memory.load(ptr)
        return None

    def _exec_store(self, frame: _Frame, inst: Instruction, depth: int):
        ptr = self._value(frame, inst.pointer)
        if not isinstance(ptr, MemPointer):
            raise TrapError("store through non-pointer")
        self.memory.store(ptr, self._value(frame, inst.value))
        return None

    def _exec_gep(self, frame: _Frame, inst: Instruction, depth: int):
        base = self._value(frame, inst.pointer)
        if not isinstance(base, MemPointer):
            raise TrapError("gep on non-pointer")
        offset = 0
        for idx, stride in zip(inst.indices, inst.element_strides()):
            offset += int(self._value(frame, idx)) * stride
        frame.values[inst] = base.advanced(offset)
        return None

    def _exec_call(self, frame: _Frame, inst: Instruction, depth: int):
        frame.values[inst] = self._do_call(frame, inst.callee, inst.args, depth)
        return None

    def _exec_invoke(self, frame: _Frame, inst: Instruction, depth: int):
        # The substrate has no unwinding sources; invoke always takes
        # the normal edge (matching -prune-eh's model).
        frame.values[inst] = self._do_call(frame, inst.callee, inst.args, depth)
        return ("br", inst.normal_dest)

    def _exec_cast(self, frame: _Frame, inst: Instruction, depth: int):
        src = self._value(frame, inst.operand)
        if isinstance(src, MemPointer):
            if inst.opcode == "bitcast":
                frame.values[inst] = src
                return None
            raise TrapError(f"{inst.opcode} of pointer value")
        frame.values[inst] = eval_cast(inst.opcode, inst.operand.type, inst.type, src)
        return None

    def _exec_return(self, frame: _Frame, inst: Instruction, depth: int):
        rv = inst.return_value
        return ("ret", self._value(frame, rv) if rv is not None else None)

    def _exec_branch(self, frame: _Frame, inst: Instruction, depth: int):
        if inst.is_conditional:
            cond = self._value(frame, inst.condition)
            return ("br", inst.true_target if cond else inst.false_target)
        return ("br", inst.true_target)

    def _exec_switch(self, frame: _Frame, inst: Instruction, depth: int):
        value = int(self._value(frame, inst.condition))
        for const, target in inst.cases:
            if const.value == value:
                return ("br", target)
        return ("br", inst.default)

    def _exec_unreachable(self, frame: _Frame, inst: Instruction, depth: int):
        raise TrapError("executed unreachable")

    def _exec_phi(self, frame: _Frame, inst: Instruction, depth: int):  # pragma: no cover
        raise TrapError("phi executed out of order")

    def _exec_unknown(self, frame: _Frame, inst: Instruction, depth: int):
        raise TrapError(f"cannot execute opcode {inst.opcode}")

    # Exact-class handler table, resolved through the subclass-aware cache
    # below so instruction subclasses inherit their base handler.
    _HANDLER_BASES = None  # populated lazily after class body (needs methods)
    _DISPATCH: Dict[type, object] = {}

    @classmethod
    def _handler_for(cls, klass: type):
        handler = Interpreter._DISPATCH.get(klass)
        if handler is None:
            for base, fn in Interpreter._HANDLER_BASES:
                if issubclass(klass, base):
                    handler = fn
                    break
            else:
                handler = Interpreter._exec_unknown
            Interpreter._DISPATCH[klass] = handler
        return handler

    def _execute(self, frame: _Frame, inst: Instruction, depth: int):
        """Single-instruction dispatch (kept for direct callers; the hot
        loop binds handlers per block in :meth:`_run_block`)."""
        return self._handler_for(inst.__class__)(self, frame, inst, depth)

    def _do_call(self, frame: _Frame, callee, arg_values, depth: int) -> Scalar:
        args = [self._value(frame, a) for a in arg_values]
        if isinstance(callee, str):
            self.call_counts[callee] = self.call_counts.get(callee, 0) + 1
            return call_external(callee, args, self.memory, self.output)
        if callee.is_declaration:
            return call_external(callee.name, args, self.memory, self.output)
        return self._call_function(callee, args, depth + 1)

    @staticmethod
    def _pointer_compare(pred: str, a: Scalar, b: Scalar) -> bool:
        def key(x):
            if isinstance(x, MemPointer):
                return (x.segment, x.offset)
            return (-(2 ** 60), int(x))  # null/int compares below any pointer

        ka, kb = key(a), key(b)
        if pred == "eq":
            return ka == kb
        if pred == "ne":
            return ka != kb
        if pred in ("ult", "slt"):
            return ka < kb
        if pred in ("ule", "sle"):
            return ka <= kb
        if pred in ("ugt", "sgt"):
            return ka > kb
        if pred in ("uge", "sge"):
            return ka >= kb
        raise TrapError(f"unsupported pointer comparison {pred}")


# The isinstance-ordered handler table (mirrors the former _execute chain);
# defined after the class body so the method objects exist.
Interpreter._HANDLER_BASES = (
    (BinaryOperator, Interpreter._exec_binary),
    (FNegInst, Interpreter._exec_fneg),
    (ICmpInst, Interpreter._exec_icmp),
    (FCmpInst, Interpreter._exec_fcmp),
    (SelectInst, Interpreter._exec_select),
    (AllocaInst, Interpreter._exec_alloca),
    (LoadInst, Interpreter._exec_load),
    (StoreInst, Interpreter._exec_store),
    (GEPInst, Interpreter._exec_gep),
    (CallInst, Interpreter._exec_call),
    (InvokeInst, Interpreter._exec_invoke),
    (CastInst, Interpreter._exec_cast),
    (ReturnInst, Interpreter._exec_return),
    (BranchInst, Interpreter._exec_branch),
    (SwitchInst, Interpreter._exec_switch),
    (UnreachableInst, Interpreter._exec_unreachable),
    (PhiNode, Interpreter._exec_phi),
)


def run_module(module: Module, entry: str = "main", args: Optional[List[Scalar]] = None,
               max_steps: int = 1_000_000) -> ExecutionResult:
    """Convenience wrapper: build an interpreter, run, return the result."""
    return Interpreter(module, max_steps=max_steps).run(entry, args)
