"""Runtime state for the IR interpreter: memory segments and pointers.

Memory is segmented: every alloca execution and every global variable gets
its own segment of scalar slots. A runtime pointer is (segment, offset).
Out-of-range accesses raise :class:`TrapError` — the generator's filter
discards programs that trap, mirroring the paper's "fails HLS compilation"
filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

__all__ = ["MemPointer", "Memory", "TrapError", "InterpreterLimitExceeded",
           "StepBudgetExceeded"]

Scalar = Union[int, float]


class TrapError(Exception):
    """Undefined behaviour the substrate refuses to paper over."""


class InterpreterLimitExceeded(Exception):
    """The step/recursion budget ran out (the '5 minutes on CPU' filter)."""


class StepBudgetExceeded(InterpreterLimitExceeded):
    """Specifically the *step* budget (not recursion depth) ran out.

    Distinguished so cache layers can record "this sequence merely timed
    out of its simulation budget" separately from genuine HLS failures
    (traps, scheduling errors); existing handlers that catch
    :class:`InterpreterLimitExceeded` keep working unchanged."""


@dataclass(frozen=True)
class MemPointer:
    """A runtime pointer value: segment id + slot offset."""

    segment: int
    offset: int

    def advanced(self, delta: int) -> "MemPointer":
        return MemPointer(self.segment, self.offset + delta)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ptr({self.segment}:{self.offset})"


NULL = MemPointer(-1, 0)


class Memory:
    """Segmented scalar memory with bounds checking."""

    def __init__(self) -> None:
        self._segments: Dict[int, List[Scalar]] = {}
        self._next_id = 0

    def allocate(self, size: int, fill: Scalar = 0) -> MemPointer:
        seg = self._next_id
        self._next_id += 1
        self._segments[seg] = [fill] * size
        return MemPointer(seg, 0)

    def allocate_init(self, values: List[Scalar]) -> MemPointer:
        seg = self._next_id
        self._next_id += 1
        self._segments[seg] = list(values)
        return MemPointer(seg, 0)

    def free(self, ptr: MemPointer) -> None:
        self._segments.pop(ptr.segment, None)

    def _slot(self, ptr: MemPointer) -> List[Scalar]:
        seg = self._segments.get(ptr.segment)
        if seg is None:
            raise TrapError(f"access to freed/invalid segment {ptr.segment}")
        if not (0 <= ptr.offset < len(seg)):
            raise TrapError(f"out-of-bounds access: offset {ptr.offset} in segment of {len(seg)} slots")
        return seg

    def load(self, ptr: MemPointer) -> Scalar:
        return self._slot(ptr)[ptr.offset]

    def store(self, ptr: MemPointer, value: Scalar) -> None:
        self._slot(ptr)[ptr.offset] = value

    def segment_values(self, segment: int) -> List[Scalar]:
        return list(self._segments[segment])

    def copy(self, dst: MemPointer, src: MemPointer, count: int) -> None:
        src_seg = self._segments.get(src.segment)
        dst_seg = self._segments.get(dst.segment)
        if src_seg is None or dst_seg is None:
            raise TrapError("memcpy with invalid segment")
        if src.offset + count > len(src_seg) or dst.offset + count > len(dst_seg):
            raise TrapError("memcpy out of bounds")
        data = src_seg[src.offset: src.offset + count]
        dst_seg[dst.offset: dst.offset + count] = data

    def fill(self, dst: MemPointer, value: Scalar, count: int) -> None:
        seg = self._segments.get(dst.segment)
        if seg is None:
            raise TrapError("memset with invalid segment")
        if dst.offset + count > len(seg):
            raise TrapError("memset out of bounds")
        seg[dst.offset: dst.offset + count] = [value] * count

    def digest(self) -> int:
        """Order-independent-ish content hash of all live segments.

        Used by differential tests to compare final memory states. Segment
        ids are allocation-order dependent, so we hash contents only per
        segment in sorted-id order; passes must not change allocation
        order observable through globals (globals are created first and
        deterministically).
        """
        items = []
        for seg_id in sorted(self._segments):
            values = self._segments[seg_id]
            items.append(hash(tuple(round(v, 9) if isinstance(v, float) else v for v in values)))
        return hash(tuple(items))
