"""repro.interp — the IR interpreter and its runtime state.

Provides the *software traces* LegUp-style cycle profiling multiplies
against per-block FSM state counts, and the observable-behaviour tuples
differential pass testing compares.
"""

from .state import InterpreterLimitExceeded, Memory, MemPointer, TrapError
from .externals import EXTERNAL_ATTRIBUTES, call_external, is_known_external
from .interpreter import ExecutionResult, Interpreter, run_module

__all__ = [
    "InterpreterLimitExceeded", "Memory", "MemPointer", "TrapError",
    "EXTERNAL_ATTRIBUTES", "call_external", "is_known_external",
    "ExecutionResult", "Interpreter", "run_module",
]
