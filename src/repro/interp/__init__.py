"""repro.interp — the IR interpreter and its runtime state.

Provides the *software traces* LegUp-style cycle profiling multiplies
against per-block FSM state counts, and the observable-behaviour tuples
differential pass testing compares.
"""

from .state import (
    InterpreterLimitExceeded,
    Memory,
    MemPointer,
    StepBudgetExceeded,
    TrapError,
)
from .externals import EXTERNAL_ATTRIBUTES, call_external, is_known_external
from .interpreter import (
    ExecutionResult,
    Interpreter,
    clear_plan_cache,
    plan_cache_info,
    run_module,
)
from .kernels import (
    KernelInterpreter,
    VerificationError,
    clear_kernel_cache,
    kernel_cache_info,
    run_verified,
)
from .batch_exec import (
    BatchedKernelExecutor,
    batch_exec_info,
    clear_batch_exec_stats,
    sim_batch_mode,
    sim_simd_mode,
)

__all__ = [
    "InterpreterLimitExceeded", "Memory", "MemPointer", "StepBudgetExceeded",
    "TrapError",
    "EXTERNAL_ATTRIBUTES", "call_external", "is_known_external",
    "ExecutionResult", "Interpreter", "run_module",
    "plan_cache_info", "clear_plan_cache",
    "KernelInterpreter", "VerificationError", "run_verified",
    "kernel_cache_info", "clear_kernel_cache",
    "BatchedKernelExecutor", "sim_batch_mode", "sim_simd_mode",
    "batch_exec_info", "clear_batch_exec_stats",
]
