"""Flat compiled simulation kernels — the interpreter's fast path.

The reference :class:`~repro.interp.interpreter.Interpreter` resolves
every executed instruction through per-step machinery: a frame dict
lookup per operand, an opcode-path re-selection inside each ``_exec_*``
handler, and a tuple allocation per control decision. On the cold
evaluation path (engine/trie/store miss) that per-step cost *is* the
simulator cost — profiling shows 93–95 % of a cold ``profile()`` is
interpretation.

This module compiles each function's CFG once into a flat form:

* **register-slot allocation** — arguments and value-producing
  instructions get dense list slots; a frame is ``[None] * nregs``
  instead of a dict keyed by Value objects;
* **block traces** — each basic block is lowered to a tuple of
  pre-bound step closures (operand slots, folded constants, resolved
  global/callee indices and per-opcode scalar closures from
  :mod:`repro.ir.folding` are all baked in at compile time) executed by
  a tight dispatch loop;
* **segmented step accounting** — straight-line runs pre-add their step
  count in one operation; traces are split at call boundaries so the
  running counter agrees exactly with the reference at every callee
  entry, and a near-budget slow path reproduces the reference's exact
  raise point.

Compiled kernels are **module-independent**: globals and callees are
referenced by index into per-execution binding tables resolved by name,
so one kernel serves every clone and every structurally identical
function. The cache is keyed by the same structural body hash
(:func:`repro.hls.hashing.structural_key`) the schedule and feature
caches use.

Bit-identity contract: for any module, :class:`KernelInterpreter` and
the reference interpreter produce equal ``ExecutionResult.observable()``,
``steps``, ``block_counts`` and ``call_counts`` — or raise the same
category of error (:class:`StepBudgetExceeded` /
:class:`InterpreterLimitExceeded` / :class:`TrapError`).
:func:`run_verified` executes both and hard-fails on divergence
(``REPRO_SIM_KERNELS=verify``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .. import telemetry as tm
from ..ir.folding import cast_fn, fcmp_fn, float_binop_fn, icmp_fn, int_binop_fn
from ..ir.instructions import (
    FLOAT_BINOPS,
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    InvokeInst,
    LoadInst,
    PhiNode,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable, UndefValue
from .externals import call_external
from .interpreter import ExecutionResult, Interpreter
from .simd import _K_CONST, _K_GLOBAL, _K_REG, _K_TRAP, compile_plans
from .state import (
    InterpreterLimitExceeded,
    Memory,
    MemPointer,
    StepBudgetExceeded,
    TrapError,
)

__all__ = ["KernelInterpreter", "VerificationError", "run_verified",
           "kernel_cache_info", "clear_kernel_cache", "compiled_for"]

_pointer_compare = Interpreter._pointer_compare

# Operand descriptor kinds (compile-time classification of a Value) are
# shared with the typed-SIMD plan compiler — interp.simd owns them.

_RET_NONE = ("ret", None)


class VerificationError(Exception):
    """verify mode found a kernel/reference divergence — a kernel bug."""


# -- compiled representation --------------------------------------------------

class CompiledFunction:
    """The module-independent compiled form of one function body."""

    __slots__ = ("nregs", "nargs", "alloca_slot", "nblocks",
                 "blocks", "gnames", "callee_specs",
                 "col_plans", "has_col_plans")

    def __init__(self, nregs: int, nargs: int, alloca_slot: int,
                 blocks: List[Tuple], gnames: List[str],
                 callee_specs: List[Tuple[str, str]],
                 col_plans: Optional[Tuple] = None) -> None:
        self.nregs = nregs
        self.nargs = nargs
        self.alloca_slot = alloca_slot  # -1 when the function has no allocas
        self.nblocks = len(blocks)
        # per block: (phi_edges, segments, term, term_counts_step, term_desc)
        # term_desc is a declarative form of simple terminators — see
        # _FunctionCompiler._term_desc — consumed by the lock-step batch
        # executor so one decode serves a whole wave; None falls back to
        # calling the scalar ``term`` closure per lane.
        self.blocks = blocks
        self.gnames = gnames
        self.callee_specs = callee_specs
        # typed-SIMD column plans, indexed like ``blocks``: per block None
        # or a per-segment tuple of None | ColumnPlan (see interp.simd).
        self.col_plans = col_plans
        self.has_col_plans = col_plans is not None


class _ExecState:
    """Mutable execution-wide counters shared by every bound function."""

    __slots__ = ("steps", "max_steps", "depth", "max_depth")

    def __init__(self, max_steps: int, max_depth: int) -> None:
        self.steps = 0
        self.max_steps = max_steps
        self.depth = -1  # entry call lands at depth 0, like the reference
        self.max_depth = max_depth


class _BoundFunction:
    """One compiled function bound to a concrete module + execution.

    Step closures receive ``(bf, regs)``; the bound function carries the
    resolved global pointers, callee targets and shared runtime tables
    they index into.
    """

    __slots__ = ("cf", "name", "st", "gv", "callees", "counts", "mem",
                 "segs", "output", "call_counts", "src_blocks")

    def call(self, args: List) -> object:
        st = self.st
        depth = st.depth + 1
        if depth > st.max_depth:
            raise InterpreterLimitExceeded(f"call depth exceeded in @{self.name}")
        st.depth = depth
        cc = self.call_counts
        cc[self.name] = cc.get(self.name, 0) + 1
        cf = self.cf
        regs: List = [None] * cf.nregs
        n = len(args)
        if n:
            if n > cf.nargs:
                n = cf.nargs
            regs[:n] = args[:n]
        aslot = cf.alloca_slot
        allocas: Optional[List[MemPointer]] = None
        if aslot >= 0:
            allocas = regs[aslot] = []
        blocks = cf.blocks
        counts = self.counts
        limit = st.max_steps
        bidx = 0
        prev = -1
        try:
            while True:
                counts[bidx] += 1
                phi_edges, segments, term, term_counts, _ = blocks[bidx]
                if phi_edges is not None:
                    moves = phi_edges[prev]
                    if type(moves) is str:
                        raise KeyError(moves)
                    if len(moves) == 1:
                        d, kind, val = moves[0]
                        if kind == 0:
                            regs[d] = regs[val]
                        elif kind == 1:
                            regs[d] = val
                        elif kind == 2:
                            regs[d] = self.gv[val]
                        else:
                            raise TrapError(val)
                    else:
                        # simultaneous assignment: read all edges, then write
                        vals = []
                        for mv in moves:
                            kind = mv[1]
                            if kind == 0:
                                vals.append(regs[mv[2]])
                            elif kind == 1:
                                vals.append(mv[2])
                            elif kind == 2:
                                vals.append(self.gv[mv[2]])
                            else:
                                raise TrapError(mv[2])
                        i = 0
                        for mv in moves:
                            regs[mv[0]] = vals[i]
                            i += 1
                for nsteps, seg in segments:
                    ns = st.steps + nsteps
                    if ns <= limit:
                        st.steps = ns
                        for f in seg:
                            f(self, regs)
                    else:
                        # near-budget slow path: reference increment order
                        for f in seg:
                            s = st.steps + 1
                            if s > limit:
                                raise StepBudgetExceeded(
                                    f"step budget exhausted in @{self.name}")
                            st.steps = s
                            f(self, regs)
                if term_counts:
                    s = st.steps + 1
                    if s > limit:
                        raise StepBudgetExceeded(
                            f"step budget exhausted in @{self.name}")
                    st.steps = s
                transfer = term(self, regs)
                if type(transfer) is int:
                    prev = bidx
                    bidx = transfer
                else:
                    return transfer[1]
        finally:
            st.depth = depth - 1
            if allocas:
                free = self.mem.free
                for ptr in allocas:
                    free(ptr)


# -- compile-time helpers -----------------------------------------------------

def _getter(desc):
    """Generic operand fetch closure (used off the specialized fast paths)."""
    kind, val = desc
    if kind == _K_REG:
        def get(bf, regs, _s=val):
            return regs[_s]
    elif kind == _K_CONST:
        def get(bf, regs, _v=val):
            return _v
    elif kind == _K_GLOBAL:
        def get(bf, regs, _g=val):
            return bf.gv[_g]
    else:
        def get(bf, regs, _m=val):
            raise TrapError(_m)
    return get


def _binary_step(desc_a, desc_b, combine, dest):
    """``regs[dest] = combine(a, b)`` with reg/const operand fetches inlined."""
    ka, va = desc_a
    kb, vb = desc_b
    if ka == _K_REG and kb == _K_REG:
        def step(bf, regs, _a=va, _b=vb, _c=combine, _d=dest):
            regs[_d] = _c(regs[_a], regs[_b])
    elif ka == _K_REG and kb == _K_CONST:
        def step(bf, regs, _a=va, _b=vb, _c=combine, _d=dest):
            regs[_d] = _c(regs[_a], _b)
    elif ka == _K_CONST and kb == _K_REG:
        def step(bf, regs, _a=va, _b=vb, _c=combine, _d=dest):
            regs[_d] = _c(_a, regs[_b])
    elif ka == _K_CONST and kb == _K_CONST:
        def step(bf, regs, _a=va, _b=vb, _c=combine, _d=dest):
            regs[_d] = _c(_a, _b)
    else:
        ga, gb = _getter(desc_a), _getter(desc_b)
        def step(bf, regs, _ga=ga, _gb=gb, _c=combine, _d=dest):
            regs[_d] = _c(_ga(bf, regs), _gb(bf, regs))
    return step


def _unary_step(desc, combine, dest):
    kind, val = desc
    if kind == _K_REG:
        def step(bf, regs, _a=val, _c=combine, _d=dest):
            regs[_d] = _c(regs[_a])
    elif kind == _K_CONST:
        def step(bf, regs, _a=val, _c=combine, _d=dest):
            regs[_d] = _c(_a)
    else:
        g = _getter(desc)
        def step(bf, regs, _g=g, _c=combine, _d=dest):
            regs[_d] = _c(_g(bf, regs))
    return step


class _FunctionCompiler:
    """Lowers one function to a :class:`CompiledFunction`."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.slots: Dict = {}
        self.gidx: Dict = {}
        self.gnames: List[str] = []
        self.cidx: Dict = {}
        self.callee_specs: List[Tuple[str, str]] = []
        self.block_index: Dict[BasicBlock, int] = {
            bb: i for i, bb in enumerate(func.blocks)}
        self.alloca_slot = -1
        # per block: (phis, segment instruction lists, terminator | None),
        # mirroring the compiled ``blocks`` segmentation — the typed-SIMD
        # plan compiler classifies segments from this layout.
        self.block_layouts: List[Tuple] = []

    # -- slot / table allocation -------------------------------------------
    def _allocate_slots(self) -> int:
        n = 0
        for arg in self.func.args:
            self.slots[arg] = n
            n += 1
        has_alloca = False
        for bb in self.func.blocks:
            for inst in bb.instructions:
                if isinstance(inst, (StoreInst, BranchInst, SwitchInst,
                                     ReturnInst, UnreachableInst)):
                    continue
                if isinstance(inst, AllocaInst):
                    has_alloca = True
                self.slots[inst] = n
                n += 1
        if has_alloca:
            self.alloca_slot = n
            n += 1
        return n

    def _global_index(self, gv: GlobalVariable) -> int:
        idx = self.gidx.get(gv)
        if idx is None:
            idx = self.gidx[gv] = len(self.gnames)
            self.gnames.append(gv.name)
        return idx

    def _callee_index(self, callee) -> int:
        idx = self.cidx.get(callee if isinstance(callee, str) else id(callee))
        if idx is not None:
            return idx
        if isinstance(callee, str):
            spec = ("x", callee)          # external: counted call_external
            key = callee
        elif callee.is_declaration:
            spec = ("e", callee.name)     # declaration: uncounted external
            key = id(callee)
        else:
            spec = ("d", callee.name)     # defined: recurse into a kernel
            key = id(callee)
        idx = self.cidx[key] = len(self.callee_specs)
        self.callee_specs.append(spec)
        return idx

    def _operand(self, v) -> Tuple[int, object]:
        slot = self.slots.get(v)
        if slot is not None:
            return (_K_REG, slot)
        if isinstance(v, ConstantInt):
            return (_K_CONST, v.value)
        if isinstance(v, ConstantFloat):
            return (_K_CONST, v.value)
        if isinstance(v, UndefValue):
            return (_K_CONST, 0.0 if v.type.is_float else 0)
        if isinstance(v, GlobalVariable):
            return (_K_GLOBAL, self._global_index(v))
        if isinstance(v, Function):
            return (_K_TRAP, "function pointers are not executable values")
        return (_K_TRAP, f"use of undefined value %{v.name}")

    # -- whole-function lowering -------------------------------------------
    def compile(self) -> CompiledFunction:
        nregs = self._allocate_slots()
        blocks = [self._compile_block(bb) for bb in self.func.blocks]
        return CompiledFunction(nregs, len(self.func.args), self.alloca_slot,
                                blocks, self.gnames, self.callee_specs,
                                compile_plans(self))

    def _compile_block(self, bb: BasicBlock) -> Tuple:
        phis = bb.phis()
        phi_edges = self._compile_phis(phis) if phis else None

        body = bb.instructions[len(phis):]
        # The reference stops at the first control transfer, so anything
        # after a terminator is dead; truncate to keep step counts exact.
        term_at = None
        for i, inst in enumerate(body):
            if inst.is_terminator:
                term_at = i
                break
        if term_at is None:
            straight = body
            term = self._trap_step(
                f"block {bb.name} fell through without terminator")
            term_counts = False
            term_desc = None
        else:
            straight = body[:term_at]
            term = self._compile_inst(body[term_at])
            term_counts = True
            term_desc = self._term_desc(body[term_at])

        # Segment the straight-line trace at call boundaries so the step
        # counter is exact whenever control enters a callee.
        segments: List[Tuple[int, Tuple]] = []
        seg_insts: List[List] = []
        run: List = []
        run_insts: List = []
        for inst in straight:
            run.append(self._compile_inst(inst))
            run_insts.append(inst)
            if isinstance(inst, (CallInst, InvokeInst)):
                segments.append((len(run), tuple(run)))
                seg_insts.append(run_insts)
                run = []
                run_insts = []
        if run:
            segments.append((len(run), tuple(run)))
            seg_insts.append(run_insts)
        self.block_layouts.append(
            (phis, seg_insts, body[term_at] if term_at is not None else None))
        return (phi_edges, tuple(segments), term, term_counts, term_desc)

    def _term_desc(self, inst) -> Optional[Tuple]:
        """Declarative terminator form for wave-wide dispatch, or None
        when only the scalar closure can evaluate it (invoke, trapping
        operands, generic getters)."""
        if isinstance(inst, BranchInst):
            if not inst.is_conditional:
                return ("br", self.block_index[inst.true_target])
            t = self.block_index[inst.true_target]
            f = self.block_index[inst.false_target]
            kind, val = self._operand(inst.condition)
            if kind == _K_REG:
                return ("cbr", val, t, f)
            if kind == _K_CONST:
                return ("br", t if val else f)
            return None
        if isinstance(inst, SwitchInst):
            kind, val = self._operand(inst.condition)
            if kind != _K_REG:
                return None
            table: Dict[int, int] = {}
            for const, target in inst.cases:
                table.setdefault(const.value, self.block_index[target])
            return ("switch", val, table, self.block_index[inst.default])
        if isinstance(inst, ReturnInst):
            rv = inst.return_value
            if rv is None:
                return ("ret_const", None)
            kind, val = self._operand(rv)
            if kind == _K_REG:
                return ("ret_reg", val)
            if kind == _K_CONST:
                return ("ret_const", val)
            return None
        return None

    def _compile_phis(self, phis: List[PhiNode]) -> Dict[int, object]:
        edges: Dict[int, object] = {}
        preds = []
        for phi in phis:
            for pred in phi.incoming_blocks:
                if pred not in preds:
                    preds.append(pred)
        for pred in preds:
            pidx = self.block_index.get(pred, -2)  # dangling pred: never taken
            moves = []
            broken = None
            for phi in phis:
                value = None
                for v, blk in zip(phi.operands, phi.incoming_blocks):
                    if blk is pred:
                        value = v
                        break
                if value is None:
                    # reference: incoming_value_for raises KeyError mid-stage
                    broken = f"phi {phi.name} has no incoming edge from {pred.name}"
                    break
                kind, val = self._operand(value)
                moves.append((self.slots[phi], kind, val))
            edges[pidx] = broken if broken is not None else tuple(moves)
        return edges

    @staticmethod
    def _trap_step(message: str):
        def step(bf, regs, _m=message):
            raise TrapError(_m)
        return step

    # -- per-instruction lowering ------------------------------------------
    def _compile_inst(self, inst):
        if isinstance(inst, BinaryOperator):
            opcode = inst.opcode
            if opcode in FLOAT_BINOPS:
                fn = float_binop_fn(opcode)
            else:
                fn = int_binop_fn(opcode, inst.type)
            return _binary_step(self._operand(inst.lhs), self._operand(inst.rhs),
                                fn, self.slots[inst])
        if isinstance(inst, FNegInst):
            return _unary_step(self._operand(inst.operand),
                               lambda v: -float(v), self.slots[inst])
        if isinstance(inst, ICmpInst):
            fn = icmp_fn(inst.predicate, inst.lhs.type)
            pred = inst.predicate

            def icmp(a, b, _f=fn, _p=pred):
                if a.__class__ is MemPointer or b.__class__ is MemPointer:
                    return 1 if _pointer_compare(_p, a, b) else 0
                return 1 if _f(a, b) else 0
            return _binary_step(self._operand(inst.lhs), self._operand(inst.rhs),
                                icmp, self.slots[inst])
        if isinstance(inst, FCmpInst):
            fn = fcmp_fn(inst.predicate)

            def fcmp(a, b, _f=fn):
                return 1 if _f(a, b) else 0
            return _binary_step(self._operand(inst.lhs), self._operand(inst.rhs),
                                fcmp, self.slots[inst])
        if isinstance(inst, SelectInst):
            gc = _getter(self._operand(inst.condition))
            gt = _getter(self._operand(inst.true_value))
            gf = _getter(self._operand(inst.false_value))
            d = self.slots[inst]

            def select(bf, regs, _gc=gc, _gt=gt, _gf=gf, _d=d):
                regs[_d] = _gt(bf, regs) if _gc(bf, regs) else _gf(bf, regs)
            return select
        if isinstance(inst, AllocaInst):
            size = inst.allocated_type.size_slots
            d = self.slots[inst]
            aslot = self.alloca_slot

            def alloca(bf, regs, _n=size, _d=d, _a=aslot):
                ptr = bf.mem.allocate(_n)
                regs[_a].append(ptr)
                regs[_d] = ptr
            return alloca
        if isinstance(inst, LoadInst):
            return self._compile_load(inst)
        if isinstance(inst, StoreInst):
            return self._compile_store(inst)
        if isinstance(inst, GEPInst):
            return self._compile_gep(inst)
        if isinstance(inst, InvokeInst):
            # no unwinding sources: a call plus a jump to the normal edge
            call = self._compile_call_like(inst, self.slots[inst])
            target = self.block_index[inst.normal_dest]

            def invoke(bf, regs, _call=call, _t=target):
                _call(bf, regs)
                return _t
            return invoke
        if isinstance(inst, CallInst):
            return self._compile_call_like(inst, self.slots[inst])
        if isinstance(inst, CastInst):
            return self._compile_cast(inst)
        if isinstance(inst, ReturnInst):
            rv = inst.return_value
            if rv is None:
                def ret_void(bf, regs):
                    return _RET_NONE
                return ret_void
            kind, val = self._operand(rv)
            if kind == _K_REG:
                def ret_reg(bf, regs, _s=val):
                    return ("ret", regs[_s])
                return ret_reg
            if kind == _K_CONST:
                packed = ("ret", val)

                def ret_const(bf, regs, _r=packed):
                    return _r
                return ret_const
            g = _getter((kind, val))

            def ret_gen(bf, regs, _g=g):
                return ("ret", _g(bf, regs))
            return ret_gen
        if isinstance(inst, BranchInst):
            if not inst.is_conditional:
                target = self.block_index[inst.true_target]

                def br(bf, regs, _t=target):
                    return _t
                return br
            t = self.block_index[inst.true_target]
            f = self.block_index[inst.false_target]
            kind, val = self._operand(inst.condition)
            if kind == _K_REG:
                def cbr(bf, regs, _c=val, _t=t, _f=f):
                    return _t if regs[_c] else _f
                return cbr
            if kind == _K_CONST:
                fixed = t if val else f

                def cbr_const(bf, regs, _t=fixed):
                    return _t
                return cbr_const
            g = _getter((kind, val))

            def cbr_gen(bf, regs, _g=g, _t=t, _f=f):
                return _t if _g(bf, regs) else _f
            return cbr_gen
        if isinstance(inst, SwitchInst):
            # dict built first-match-wins, like the reference's linear scan
            table: Dict[int, int] = {}
            for const, target in inst.cases:
                table.setdefault(const.value, self.block_index[target])
            default = self.block_index[inst.default]
            kind, val = self._operand(inst.condition)
            if kind == _K_REG:
                def switch(bf, regs, _c=val, _tab=table, _dflt=default):
                    return _tab.get(int(regs[_c]), _dflt)
                return switch
            g = _getter((kind, val))

            def switch_gen(bf, regs, _g=g, _tab=table, _dflt=default):
                return _tab.get(int(_g(bf, regs)), _dflt)
            return switch_gen
        if isinstance(inst, UnreachableInst):
            return self._trap_step("executed unreachable")
        if isinstance(inst, PhiNode):
            return self._trap_step("phi executed out of order")
        return self._trap_step(f"cannot execute opcode {inst.opcode}")

    def _compile_load(self, inst: LoadInst):
        d = self.slots[inst]
        kind, val = self._operand(inst.pointer)
        if kind == _K_REG:
            def load(bf, regs, _p=val, _d=d):
                p = regs[_p]
                if p.__class__ is not MemPointer:
                    raise TrapError("load through non-pointer")
                o = p.offset
                if o >= 0:
                    try:
                        regs[_d] = bf.segs[p.segment][o]
                        return
                    except KeyError:
                        raise TrapError(f"access to freed/invalid segment "
                                        f"{p.segment}") from None
                    except IndexError:
                        pass
                seg = bf.segs.get(p.segment)
                if seg is None:
                    raise TrapError(f"access to freed/invalid segment {p.segment}")
                raise TrapError(f"out-of-bounds access: offset {o} "
                                f"in segment of {len(seg)} slots")
            return load
        if kind == _K_GLOBAL:
            # global pointers are always valid MemPointers and their
            # segments are never freed during an execution
            def load_global(bf, regs, _g=val, _d=d):
                p = bf.gv[_g]
                seg = bf.segs[p.segment]
                o = p.offset
                if o >= 0:
                    try:
                        regs[_d] = seg[o]
                        return
                    except IndexError:
                        pass
                raise TrapError(f"out-of-bounds access: offset {o} "
                                f"in segment of {len(seg)} slots")
            return load_global
        g = _getter((kind, val))

        def load_gen(bf, regs, _g=g, _d=d):
            p = _g(bf, regs)
            if p.__class__ is not MemPointer:
                raise TrapError("load through non-pointer")
            seg = bf.segs.get(p.segment)
            if seg is None:
                raise TrapError(f"access to freed/invalid segment {p.segment}")
            o = p.offset
            if 0 <= o < len(seg):
                regs[_d] = seg[o]
            else:
                raise TrapError(f"out-of-bounds access: offset {o} "
                                f"in segment of {len(seg)} slots")
        return load_gen

    def _compile_store(self, inst: StoreInst):
        gp = _getter(self._operand(inst.pointer))
        kind, val = self._operand(inst.value)
        pkind, pval = self._operand(inst.pointer)
        if pkind == _K_REG and kind == _K_REG:
            def store(bf, regs, _p=pval, _v=val):
                p = regs[_p]
                if p.__class__ is not MemPointer:
                    raise TrapError("store through non-pointer")
                o = p.offset
                if o >= 0:
                    try:
                        bf.segs[p.segment][o] = regs[_v]
                        return
                    except KeyError:
                        raise TrapError(f"access to freed/invalid segment "
                                        f"{p.segment}") from None
                    except IndexError:
                        pass
                seg = bf.segs.get(p.segment)
                if seg is None:
                    raise TrapError(f"access to freed/invalid segment {p.segment}")
                raise TrapError(f"out-of-bounds access: offset {o} "
                                f"in segment of {len(seg)} slots")
            return store
        if pkind == _K_GLOBAL and kind == _K_REG:
            def store_global(bf, regs, _p=pval, _v=val):
                p = bf.gv[_p]
                seg = bf.segs[p.segment]
                o = p.offset
                if o >= 0:
                    try:
                        seg[o] = regs[_v]
                        return
                    except IndexError:
                        pass
                raise TrapError(f"out-of-bounds access: offset {o} "
                                f"in segment of {len(seg)} slots")
            return store_global
        gv = _getter((kind, val))

        def store_gen(bf, regs, _gp=gp, _gv=gv):
            p = _gp(bf, regs)
            if p.__class__ is not MemPointer:
                raise TrapError("store through non-pointer")
            # reference order: the stored value resolves before the
            # segment/bounds checks run inside Memory.store
            v = _gv(bf, regs)
            seg = bf.segs.get(p.segment)
            if seg is None:
                raise TrapError(f"access to freed/invalid segment {p.segment}")
            o = p.offset
            if 0 <= o < len(seg):
                seg[o] = v
            else:
                raise TrapError(f"out-of-bounds access: offset {o} "
                                f"in segment of {len(seg)} slots")
        return store_gen

    # MemPointer is a frozen, unslotted dataclass: its __init__ funnels
    # every field through object.__setattr__. GEPs mint pointers in the
    # hottest loops, so the closures below build them via __new__ plus
    # direct __dict__ stores — equivalent values (same type, eq, hash),
    # roughly half the construction cost.
    def _compile_gep(self, inst: GEPInst):
        d = self.slots[inst]
        base_desc = self._operand(inst.pointer)
        const_off = 0
        dyn: List[Tuple] = []  # (kind, val, stride) for non-constant indices
        for idx, stride in zip(inst.indices, inst.element_strides()):
            kind, val = self._operand(idx)
            if kind == _K_CONST:
                const_off += int(val) * stride
            else:
                dyn.append((kind, val, stride))
        bkind, bval = base_desc
        one_reg = len(dyn) == 1 and dyn[0][0] == _K_REG
        if bkind == _K_REG and not dyn:
            def gep_const(bf, regs, _b=bval, _d=d, _k=const_off,
                          _new=object.__new__):
                base = regs[_b]
                if base.__class__ is not MemPointer:
                    raise TrapError("gep on non-pointer")
                p = _new(MemPointer)
                pd = p.__dict__
                pd["segment"] = base.segment
                pd["offset"] = base.offset + _k
                regs[_d] = p
            return gep_const
        if bkind == _K_REG and one_reg:
            def gep_reg1(bf, regs, _b=bval, _d=d, _k=const_off,
                         _i=dyn[0][1], _s=dyn[0][2], _new=object.__new__):
                base = regs[_b]
                if base.__class__ is not MemPointer:
                    raise TrapError("gep on non-pointer")
                p = _new(MemPointer)
                pd = p.__dict__
                pd["segment"] = base.segment
                pd["offset"] = base.offset + _k + int(regs[_i]) * _s
                regs[_d] = p
            return gep_reg1
        if bkind == _K_GLOBAL and not dyn:
            # global pointers are always valid MemPointers
            def gep_global_const(bf, regs, _g=bval, _d=d, _k=const_off,
                                 _new=object.__new__):
                base = bf.gv[_g]
                p = _new(MemPointer)
                pd = p.__dict__
                pd["segment"] = base.segment
                pd["offset"] = base.offset + _k
                regs[_d] = p
            return gep_global_const
        if bkind == _K_GLOBAL and one_reg:
            def gep_global1(bf, regs, _g=bval, _d=d, _k=const_off,
                            _i=dyn[0][1], _s=dyn[0][2], _new=object.__new__):
                base = bf.gv[_g]
                p = _new(MemPointer)
                pd = p.__dict__
                pd["segment"] = base.segment
                pd["offset"] = base.offset + _k + int(regs[_i]) * _s
                regs[_d] = p
            return gep_global1
        getters = tuple((_getter((kind, val)), stride)
                        for kind, val, stride in dyn)
        if bkind == _K_REG:
            def gep_dyn(bf, regs, _b=bval, _d=d, _k=const_off, _dyn=getters):
                base = regs[_b]
                if base.__class__ is not MemPointer:
                    raise TrapError("gep on non-pointer")
                off = _k
                for g, stride in _dyn:
                    off += int(g(bf, regs)) * stride
                regs[_d] = MemPointer(base.segment, base.offset + off)
            return gep_dyn
        if bkind == _K_GLOBAL:
            def gep_global_dyn(bf, regs, _b=bval, _d=d, _k=const_off,
                               _dyn=getters):
                base = bf.gv[_b]
                off = _k
                for g, stride in _dyn:
                    off += int(g(bf, regs)) * stride
                regs[_d] = MemPointer(base.segment, base.offset + off)
            return gep_global_dyn
        gb = _getter(base_desc)
        dyn = getters

        def gep_gen(bf, regs, _gb=gb, _d=d, _k=const_off, _dyn=tuple(dyn)):
            base = _gb(bf, regs)
            if base.__class__ is not MemPointer:
                raise TrapError("gep on non-pointer")
            off = _k
            for g, stride in _dyn:
                off += int(g(bf, regs)) * stride
            regs[_d] = MemPointer(base.segment, base.offset + off)
        return gep_gen

    def _compile_call_like(self, inst, dest: int):
        getters = tuple(_getter(self._operand(a)) for a in inst.args)
        ci = self._callee_index(inst.callee)
        tag, name = self.callee_specs[ci]
        if tag == "d":
            def call_defined(bf, regs, _g=getters, _ci=ci, _d=dest):
                regs[_d] = bf.callees[_ci].call([g(bf, regs) for g in _g])
            return call_defined
        if tag == "x":
            def call_external_counted(bf, regs, _g=getters, _n=name, _d=dest):
                args = [g(bf, regs) for g in _g]
                cc = bf.call_counts
                cc[_n] = cc.get(_n, 0) + 1
                regs[_d] = call_external(_n, args, bf.mem, bf.output)
            return call_external_counted

        def call_declared(bf, regs, _g=getters, _n=name, _d=dest):
            regs[_d] = call_external(_n, [g(bf, regs) for g in _g],
                                     bf.mem, bf.output)
        return call_declared

    def _compile_cast(self, inst: CastInst):
        opcode = inst.opcode
        fn = cast_fn(opcode, inst.operand.type, inst.type)
        if opcode == "bitcast":
            def bitcast(v):
                return v  # pointers pass through, scalars are unchanged
            return _unary_step(self._operand(inst.operand), bitcast,
                               self.slots[inst])

        def cast(v, _f=fn, _op=opcode):
            if v.__class__ is MemPointer:
                raise TrapError(f"{_op} of pointer value")
            return _f(v)
        return _unary_step(self._operand(inst.operand), cast, self.slots[inst])


# -- kernel cache -------------------------------------------------------------

_KERNEL_CACHE_SIZE = 1024
_kernel_cache: "OrderedDict[Tuple, CompiledFunction]" = OrderedDict()
_kernel_lock = threading.Lock()
_kernel_hits = 0
_kernel_misses = 0
_kernel_fallbacks = 0  # modules the profiler sent back to the reference


def compiled_for(func: Function, key: Tuple) -> CompiledFunction:
    """The compiled kernel for ``func``, cached under its structural key."""
    global _kernel_hits, _kernel_misses
    with _kernel_lock:
        cf = _kernel_cache.get(key)
        if cf is not None:
            _kernel_cache.move_to_end(key)
            _kernel_hits += 1
            return cf
    with tm.span("kernel.compile", func=func.name):
        cf = _FunctionCompiler(func).compile()
    with _kernel_lock:
        _kernel_misses += 1
        _kernel_cache[key] = cf
        while len(_kernel_cache) > _KERNEL_CACHE_SIZE:
            _kernel_cache.popitem(last=False)
    return cf


def count_fallback() -> None:
    global _kernel_fallbacks
    with _kernel_lock:
        _kernel_fallbacks += 1


def kernel_cache_info() -> Dict[str, int]:
    with _kernel_lock:
        return {"kernel_entries": len(_kernel_cache),
                "kernel_hits": _kernel_hits,
                "kernel_misses": _kernel_misses,
                "kernel_fallbacks": _kernel_fallbacks}


def clear_kernel_cache() -> None:
    global _kernel_hits, _kernel_misses, _kernel_fallbacks
    with _kernel_lock:
        _kernel_cache.clear()
        _kernel_hits = _kernel_misses = _kernel_fallbacks = 0


# -- execution ----------------------------------------------------------------

class KernelInterpreter:
    """Executes one module through compiled kernels. Fresh per execution.

    ``keys`` maps defined functions to their structural body hash; the
    caller (the profiler) usually computed them already for the schedule
    cache, so kernels, schedules and block plans share one key pass.
    Missing keys are computed on demand.
    """

    def __init__(self, module: Module, max_steps: int = 1_000_000,
                 max_call_depth: int = 64,
                 keys: Optional[Dict[Function, Tuple]] = None) -> None:
        from ..hls.hashing import structural_key

        self.module = module
        self.memory = Memory()
        self.output: List[int] = []
        self.call_counts: Dict[str, int] = {}
        self._state = _ExecState(max_steps, max_call_depth)
        self._globals_by_name: Dict[str, MemPointer] = {}
        self._observable_segments: List[Tuple[str, int]] = []
        # identical allocation order to the reference interpreter: globals
        # first, in module order (pointer comparisons observe segment ids)
        for gv in module.globals.values():
            ptr = self.memory.allocate_init(gv.flat_initializer())
            self._globals_by_name[gv.name] = ptr
            if gv.linkage != "internal":
                self._observable_segments.append((gv.name, ptr.segment))

        keys = keys or {}
        escapes_memo: Dict = {}
        self._bound: Dict[str, _BoundFunction] = {}
        segs = self.memory._segments  # shared alias for the load/store closures
        for func in module.defined_functions():
            key = keys.get(func)
            if key is None:
                key = structural_key(func, escapes_memo)
            cf = compiled_for(func, key)
            bf = _BoundFunction()
            bf.cf = cf
            bf.name = func.name
            bf.st = self._state
            bf.mem = self.memory
            bf.segs = segs
            bf.output = self.output
            bf.call_counts = self.call_counts
            bf.counts = [0] * cf.nblocks
            bf.src_blocks = func.blocks
            self._bound[func.name] = bf
        # second pass: resolve globals and callees now every name is bound
        for bf in self._bound.values():
            bf.gv = [self._globals_by_name[name] for name in bf.cf.gnames]
            callees: List = []
            for tag, name in bf.cf.callee_specs:
                callees.append(self._bound[name] if tag == "d" else name)
            bf.callees = callees

    def run(self, entry: str = "main", args: Optional[List] = None) -> ExecutionResult:
        func = self.module.get_function(entry)
        if func is None or func.is_declaration:
            raise TrapError(f"no defined entry function @{entry}")
        with tm.span("kernel.execute", entry=entry):
            rv = self._bound[entry].call(list(args or []))
        tm.count("kernel.steps", self._state.steps)
        block_counts: Dict[BasicBlock, int] = {}
        for bf in self._bound.values():
            for bb, count in zip(bf.src_blocks, bf.counts):
                if count:
                    block_counts[bb] = count
        return ExecutionResult(
            return_value=rv,
            steps=self._state.steps,
            block_counts=block_counts,
            call_counts=dict(self.call_counts),
            output=list(self.output),
            memory_digest=self._digest_globals(),
        )

    def _digest_globals(self) -> int:
        items = []
        for name, seg in sorted(self._observable_segments):
            values = self.memory.segment_values(seg)
            items.append((name, hash(tuple(round(v, 9) if isinstance(v, float) else v
                                           for v in values))))
        return hash(tuple(items))


# -- verify mode --------------------------------------------------------------

def _error_category(exc: BaseException) -> str:
    if isinstance(exc, StepBudgetExceeded):
        return "budget"
    if isinstance(exc, InterpreterLimitExceeded):
        return "limit"
    if isinstance(exc, TrapError):
        return "trap"
    return type(exc).__name__


def run_verified(module: Module, entry: str = "main",
                 max_steps: int = 1_000_000, max_call_depth: int = 64,
                 keys: Optional[Dict[Function, Tuple]] = None,
                 plan_keys: Optional[Dict[Function, Tuple]] = None) -> ExecutionResult:
    """Run kernels AND the reference, hard-failing on any divergence.

    On success returns the reference result (the anchor); when both
    sides fail with the same error category the reference exception is
    re-raised. A category mismatch or any observable difference raises
    :class:`VerificationError`.
    """
    kernel_exc: Optional[BaseException] = None
    kernel_result: Optional[ExecutionResult] = None
    try:
        kernel_result = KernelInterpreter(
            module, max_steps=max_steps, max_call_depth=max_call_depth,
            keys=keys).run(entry)
    except Exception as exc:
        kernel_exc = exc

    ref_exc: Optional[BaseException] = None
    ref_result: Optional[ExecutionResult] = None
    try:
        ref_result = Interpreter(module, max_steps=max_steps,
                                 max_call_depth=max_call_depth,
                                 plan_keys=plan_keys).run(entry)
    except Exception as exc:
        ref_exc = exc

    if (kernel_exc is None) != (ref_exc is None):
        raise VerificationError(
            f"sim-kernel divergence on @{entry}: kernels "
            f"{'raised ' + repr(kernel_exc) if kernel_exc else 'succeeded'}, "
            f"reference {'raised ' + repr(ref_exc) if ref_exc else 'succeeded'}")
    if ref_exc is not None:
        kcat, rcat = _error_category(kernel_exc), _error_category(ref_exc)
        if kcat != rcat:
            raise VerificationError(
                f"sim-kernel divergence on @{entry}: kernel error category "
                f"{kcat} ({kernel_exc!r}) != reference {rcat} ({ref_exc!r})")
        raise ref_exc
    mismatches = []
    if kernel_result.observable() != ref_result.observable():
        mismatches.append("observable()")
    if kernel_result.steps != ref_result.steps:
        mismatches.append(f"steps {kernel_result.steps} != {ref_result.steps}")
    if kernel_result.block_counts != ref_result.block_counts:
        mismatches.append("block_counts")
    if kernel_result.call_counts != ref_result.call_counts:
        mismatches.append("call_counts")
    if kernel_result.output != ref_result.output:
        mismatches.append("output")
    if mismatches:
        raise VerificationError(
            f"sim-kernel divergence on @{entry}: {', '.join(mismatches)}")
    return ref_result
