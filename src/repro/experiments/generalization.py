"""Train-on-generated / serve-on-held-out generalization harness.

The deployment subsystem's end-to-end proof, mirroring the paper's §6
claim (train on random programs, deploy on programs the agent has never
seen): train a PPO policy on one generated corpus, push it through the
model registry (content-addressed entry + toolchain-fingerprint
validation), load it back as a :class:`~repro.deploy.policy.PolicyRunner`,
and score every *held-out* generated program three ways —

* **policy**: one greedy zero-sample rollout, engine-verified;
* **-O3**: the compiler default (the baseline every row normalizes to);
* **search**: a per-program random search given ``search_budget``
  simulator candidates — what a black-box tuner buys with N samples
  where the policy spends one.

``repro generalize`` is the CLI face; rows land in
``results/generalization.csv``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..deploy.registry import ModelRegistry
from ..ir.module import Module
from ..programs.generator import generate_corpus
from ..rl.trainer import Trainer
from ..toolchain import HLSToolchain
from .config import ExperimentScale, get_scale
from .reporting import write_csv

__all__ = ["GeneralizationRow", "GeneralizationResult", "run_generalization"]


@dataclass
class GeneralizationRow:
    program: str
    o3_cycles: int
    policy_cycles: Optional[int]       # None: policy sequence failed HLS
    policy_sequence: List[int] = field(default_factory=list)
    search_cycles: Optional[int] = None
    search_samples: int = 0
    source: str = "policy"             # what optimize() actually recommended

    @property
    def policy_improvement(self) -> float:
        if not self.o3_cycles or self.policy_cycles is None:
            return 0.0
        return (self.o3_cycles - self.policy_cycles) / self.o3_cycles

    @property
    def search_improvement(self) -> float:
        if not self.o3_cycles or self.search_cycles is None:
            return 0.0
        return (self.o3_cycles - self.search_cycles) / self.o3_cycles


@dataclass
class GeneralizationResult:
    rows: List[GeneralizationRow]
    policy_name: str
    entry_id: str
    n_train: int
    search_budget: int
    train_seconds: float

    @property
    def mean_policy_improvement(self) -> float:
        return float(np.mean([r.policy_improvement for r in self.rows])) \
            if self.rows else 0.0

    @property
    def mean_search_improvement(self) -> float:
        return float(np.mean([r.search_improvement for r in self.rows])) \
            if self.rows else 0.0

    @property
    def served_improvement(self) -> float:
        """Mean improvement of what optimize() actually recommends (the
        policy with -O3 fallback) — never negative by construction."""
        if not self.rows:
            return 0.0
        best = []
        for r in self.rows:
            cycles = (r.o3_cycles if r.policy_cycles is None
                      else min(r.policy_cycles, r.o3_cycles))
            best.append((r.o3_cycles - cycles) / r.o3_cycles
                        if r.o3_cycles else 0.0)
        return float(np.mean(best))

    def render(self) -> str:
        lines = [
            f"Generalization — policy {self.policy_name!r} ({self.entry_id}) "
            f"trained on {self.n_train} programs, "
            f"evaluated on {len(self.rows)} held-out programs",
            f"  policy (1 sample/program):         "
            f"{self.mean_policy_improvement:+.1%} vs -O3",
            f"  served (policy with -O3 fallback): "
            f"{self.served_improvement:+.1%} vs -O3",
            f"  random search ({self.search_budget} samples/program):  "
            f"{self.mean_search_improvement:+.1%} vs -O3",
            "",
            f"  {'program':<18} {'-O3':>8} {'policy':>8} {'search':>8} "
            f"{'pol-imp':>8} {'source':>7}",
        ]
        for r in self.rows:
            policy = "fail" if r.policy_cycles is None else str(r.policy_cycles)
            search = "-" if r.search_cycles is None else str(r.search_cycles)
            lines.append(f"  {r.program:<18} {r.o3_cycles:>8} {policy:>8} "
                         f"{search:>8} {r.policy_improvement:>+8.1%} "
                         f"{r.source:>7}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        return write_csv(
            "generalization.csv",
            ["program", "o3_cycles", "policy_cycles", "policy_improvement",
             "search_cycles", "search_improvement", "search_samples",
             "source"],
            [[r.program, r.o3_cycles, r.policy_cycles, r.policy_improvement,
              r.search_cycles, r.search_improvement, r.search_samples,
              r.source]
             for r in self.rows])


def _random_search(toolchain: HLSToolchain, module: Module, budget: int,
                   length: int, seed: int) -> Optional[int]:
    """Best cycle count over ``budget`` seeded random sequences — the
    Figure-7 ``random`` baseline a served policy competes with per unseen
    program (failing candidates score the evaluator's penalty value, the
    same convention the figure uses)."""
    from ..search.random_search import random_search

    if budget <= 0:
        return None
    result = random_search(module, budget=budget, sequence_length=length,
                           toolchain=toolchain, seed=seed)
    return int(result.best_cycles) if result.best_sequence else None


def run_generalization(scale: Optional[ExperimentScale] = None,
                       seed: int = 0, lanes: int = 1,
                       toolchain: Optional[HLSToolchain] = None,
                       registry: Optional[ModelRegistry] = None,
                       policy_name: str = "generalization-ppo2",
                       episodes: Optional[int] = None,
                       search_budget: Optional[int] = None,
                       refine: int = 0,
                       train_programs: Optional[Sequence[Module]] = None,
                       test_programs: Optional[Sequence[Module]] = None
                       ) -> GeneralizationResult:
    """Train → register → load-from-registry → optimize held-out programs.

    The test corpus draws from a disjoint generator stream
    (``seed + 10_000``, the Figure-9 convention), so no served program
    was ever trained on. The policy goes through a full registry round
    trip — exactly what ``repro serve-policy`` would load — before any
    inference happens.
    """
    import time

    cfg = scale or get_scale()
    toolchain = toolchain or HLSToolchain()
    train = (list(train_programs) if train_programs is not None
             else generate_corpus(cfg.n_train_programs, seed=seed))
    test = (list(test_programs) if test_programs is not None
            else generate_corpus(cfg.n_test_programs, seed=seed + 10_000))
    episodes = episodes if episodes is not None else cfg.fig8_episodes
    budget = (search_budget if search_budget is not None
              else max(4, 2 * cfg.episode_length))

    trainer = Trainer("RL-PPO2", train, episodes=episodes, lanes=lanes,
                      episode_length=cfg.episode_length, observation="both",
                      normalization="instcount", reward_mode="log",
                      toolchain=toolchain, seed=seed)
    t0 = time.perf_counter()
    trainer.train()
    train_seconds = time.perf_counter() - t0

    registry = registry or ModelRegistry()
    entry_id = registry.register(policy_name, trainer)
    runner = registry.load(policy_name, toolchain=toolchain)

    decisions = runner.optimize_batch(test, refine=refine, seed=seed)
    rows: List[GeneralizationRow] = []
    for i, (module, decision) in enumerate(zip(test, decisions)):
        name = getattr(module, "source_name", None) or f"prog{i}"
        rows.append(GeneralizationRow(
            program=name,
            o3_cycles=int(decision.o3_cycles or 0),
            policy_cycles=decision.policy_cycles,
            policy_sequence=list(decision.policy_sequence),
            search_cycles=_random_search(toolchain, module, budget,
                                         cfg.episode_length, seed + i),
            search_samples=budget,
            source=decision.source))
    return GeneralizationResult(rows=rows, policy_name=policy_name,
                                entry_id=entry_id, n_train=len(train),
                                search_budget=budget,
                                train_seconds=train_seconds)
