"""Figure 8: generalization learning curves.

Trains PPO over the random-program corpus with observation =
features ⊕ action-histogram and the §6.2 log-improvement reward, in
three configurations:

* ``filtered-norm1``  — RF-filtered features & passes, log normalization
* ``original-norm2``  — all features & passes, instruction-count norm.
* ``filtered-norm2``  — RF-filtered features & passes, instcount norm.

Output: episode-reward-mean as a function of environment step for each
variant. Expected shape (paper): the filtered variants converge faster
and higher than original-norm2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir.module import Module
from ..programs.generator import generate_corpus
from ..rl.agents import TrainResult, train_agent
from .config import ExperimentScale, get_scale
from .fig5_fig6 import run_fig5_fig6
from .reporting import format_series, write_csv

__all__ = ["Fig8Result", "VARIANTS", "run_fig8"]

VARIANTS = ("filtered-norm1", "original-norm2", "filtered-norm2")


@dataclass
class Fig8Result:
    curves: Dict[str, List[float]]        # variant -> episode reward mean
    results: Dict[str, TrainResult]
    feature_indices: List[int]
    action_indices: List[int]

    def render(self) -> str:
        return ("Figure 8 — episode reward mean vs training episode\n"
                + format_series(self.curves, x_label="episode"))

    def to_csv(self) -> str:
        n = max(len(c) for c in self.curves.values())
        rows = []
        for i in range(n):
            rows.append([i] + [self.curves[v][i] if i < len(self.curves[v]) else ""
                               for v in self.curves])
        return write_csv("fig8.csv", ["episode"] + list(self.curves), rows)

    def final_reward(self, variant: str, window: int = 10) -> float:
        curve = self.curves[variant]
        return float(np.mean(curve[-window:])) if curve else 0.0


def run_fig8(programs: Optional[Sequence[Module]] = None,
             scale: Optional[ExperimentScale] = None,
             seed: int = 0, lanes: int = 1) -> Fig8Result:
    """``lanes=1`` (default) keeps the learning curves bit-anchored to
    the seed's sequential loop; more lanes batch episodes through the
    vectorized rollout layer for throughput."""
    cfg = scale or get_scale()
    corpus = list(programs) if programs is not None else generate_corpus(
        cfg.n_train_programs, seed=seed)

    # RF filtering from the §4 analysis (Figures 5-6 machinery).
    fig56 = run_fig5_fig6(corpus, scale=cfg, seed=seed)
    feature_indices = fig56.analysis.select_features(top_k=24)
    action_indices = fig56.analysis.select_passes(top_k=16)

    specs = {
        "filtered-norm1": dict(feature_indices=feature_indices,
                               action_indices=action_indices, normalization="log"),
        "original-norm2": dict(feature_indices=None,
                               action_indices=None, normalization="instcount"),
        "filtered-norm2": dict(feature_indices=feature_indices,
                               action_indices=action_indices, normalization="instcount"),
    }
    curves: Dict[str, List[float]] = {}
    results: Dict[str, TrainResult] = {}
    for variant, spec in specs.items():
        # The paper's generalization network is a 256×256 PPO seeing the
        # histogram of applied passes concatenated with program features.
        result = train_agent(
            "RL-PPO2", corpus, episodes=cfg.fig8_episodes,
            episode_length=cfg.episode_length, observation="both",
            reward_mode="log", seed=seed, lanes=lanes, **spec)
        curves[variant] = result.episode_reward_mean()
        results[variant] = result
    return Fig8Result(curves=curves, results=results,
                      feature_indices=feature_indices, action_indices=action_indices)
