"""Text/CSV rendering of experiment artifacts.

Figures become deterministic text: bar rows for the Figure 7/9 charts,
ASCII heat maps for Figures 5/6, and aligned series tables for Figure 8.
Everything also lands as CSV under ``results/`` so external plotting can
reproduce the paper's graphics pixel-for-pixel if desired.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["format_bar_chart", "format_heatmap", "format_series", "write_csv",
           "results_dir"]


def results_dir(path: Optional[str] = None) -> str:
    d = path or os.environ.get("REPRO_RESULTS", "results")
    os.makedirs(d, exist_ok=True)
    return d


def format_bar_chart(rows: Sequence[tuple], value_label: str = "improvement",
                     extra_label: str = "samples", width: int = 40) -> str:
    """Rows of (name, improvement_fraction, samples) → aligned bars."""
    lines = [f"{'algorithm':<16} {value_label:>12}  {extra_label:>10}  "]
    values = [r[1] for r in rows]
    lo, hi = min(min(values), 0.0), max(max(values), 1e-9)
    span = hi - lo if hi > lo else 1.0
    for name, value, samples in rows:
        bar_len = int(round((value - lo) / span * width))
        bar = "#" * bar_len
        lines.append(f"{name:<16} {value:>11.1%}  {samples:>10}  |{bar}")
    return "\n".join(lines)


_SHADES = " .:-=+*#%@"


def format_heatmap(matrix: np.ndarray, row_label: str, col_label: str,
                   max_rows: int = 64, max_cols: int = 64) -> str:
    """Render a matrix as an ASCII heat map (row-normalized, like the
    paper's figures where each row sums to one)."""
    m = np.asarray(matrix, dtype=np.float64)[:max_rows, :max_cols]
    out = [f"rows: {row_label}   cols: {col_label}   (row-normalized)"]
    header = "    " + "".join(str(c % 10) for c in range(m.shape[1]))
    out.append(header)
    for r in range(m.shape[0]):
        row = m[r]
        peak = row.max()
        if peak <= 0:
            rendered = " " * m.shape[1]
        else:
            idx = np.minimum((row / peak * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1)
            rendered = "".join(_SHADES[i] for i in idx)
        out.append(f"{r:>3} {rendered}")
    return "\n".join(out)


def format_series(series: Dict[str, List[float]], x_label: str = "step",
                  points: int = 12) -> str:
    """Down-sampled aligned table of named learning curves."""
    lines = []
    names = list(series)
    header = f"{x_label:>8} " + " ".join(f"{n:>18}" for n in names)
    lines.append(header)
    n = max(len(v) for v in series.values())
    picks = sorted(set(int(round(i)) for i in np.linspace(0, n - 1, points)))
    for i in picks:
        row = [f"{i:>8}"]
        for name in names:
            values = series[name]
            row.append(f"{values[min(i, len(values) - 1)]:>18.3f}" if values else f"{'-':>18}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def write_csv(filename: str, header: Sequence[str], rows: Sequence[Sequence],
              directory: Optional[str] = None) -> str:
    path = os.path.join(results_dir(directory), filename)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path
