"""Figures 5 and 6: random-forest importance heat maps.

Figure 5 — importance of the 56 program features for each pass's
improve/don't-improve prediction. Figure 6 — importance of the
previously-applied-pass histogram entries for the same predictions.

The drivers also verify the qualitative §4 observations that the
reproduction is expected to reproduce: -loop-rotate's importance among
previously-applied passes (the paper's (23,23) hot spot) and the
concentration of importance mass on the known-impactful pass set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..forest.importance import (
    ImportanceAnalysis,
    ImportanceDataset,
    analyze_importance,
    collect_exploration_data,
)
from ..ir.module import Module
from ..passes.registry import PASS_TABLE, pass_index_for_name
from ..programs.generator import generate_corpus
from .config import ExperimentScale, get_scale
from .reporting import format_heatmap, write_csv

__all__ = ["Fig56Result", "run_fig5_fig6"]


@dataclass
class Fig56Result:
    analysis: ImportanceAnalysis
    dataset_size: int

    def render_fig5(self) -> str:
        return ("Figure 5 — importance of program features (cols) per pass (rows)\n"
                + format_heatmap(self.analysis.feature_importance,
                                 "pass index", "feature index"))

    def render_fig6(self) -> str:
        return ("Figure 6 — importance of previously applied passes (cols) per pass (rows)\n"
                + format_heatmap(self.analysis.pass_importance,
                                 "next pass index", "previous pass index"))

    def to_csv(self) -> List[str]:
        paths = [
            write_csv("fig5_feature_importance.csv",
                      ["pass_index"] + [f"f{i}" for i in range(self.analysis.feature_importance.shape[1])],
                      [[p] + list(row) for p, row in enumerate(self.analysis.feature_importance)]),
            write_csv("fig6_pass_importance.csv",
                      ["pass_index"] + [f"p{i}" for i in range(self.analysis.pass_importance.shape[1])],
                      [[p] + list(row) for p, row in enumerate(self.analysis.pass_importance)]),
        ]
        return paths

    # -- the paper's qualitative checks -------------------------------------
    def loop_rotate_prev_importance_rank(self) -> int:
        """Rank (0 = highest) of -loop-rotate among previous-pass columns
        aggregated over all next-pass rows; the paper finds it the most
        impactful prior pass (the (23,23) observation)."""
        rotate = pass_index_for_name("-loop-rotate")
        totals = self.analysis.pass_importance.sum(axis=0)
        order = np.argsort(-totals)
        return int(np.where(order == rotate)[0][0])

    def improvement_rate_rank(self, pass_name: str) -> int:
        """Rank (0 = highest) of a pass by empirical improvement rate —
        the data §4.2's 'more impactful passes' list is read off from."""
        idx = pass_index_for_name(pass_name)
        order = np.argsort(-self.analysis.improvement_rates)
        return int(np.where(order == idx)[0][0])

    def impactful_pass_names(self, top_k: int = 16) -> List[str]:
        chosen = self.analysis.select_passes(top_k=top_k, include_terminate=False)
        return [PASS_TABLE[i] for i in chosen]

    # Verbatim §4.2: "passes -scalarrepl, -gvn, ... are more impactful on
    # the performance compared to the rest of the passes".
    PAPER_IMPACTFUL = (
        "-scalarrepl", "-gvn", "-scalarrepl-ssa", "-loop-reduce",
        "-loop-deletion", "-reassociate", "-loop-rotate", "-partial-inliner",
        "-early-cse", "-adce", "-instcombine", "-simplifycfg", "-dse",
        "-loop-unroll", "-mem2reg", "-sroa",
    )

    def overlap_with_paper_impactful(self, top_k: int = 16) -> int:
        names = set(self.impactful_pass_names(top_k=top_k))
        return len(names & set(self.PAPER_IMPACTFUL))


def run_fig5_fig6(programs: Optional[Sequence[Module]] = None,
                  scale: Optional[ExperimentScale] = None,
                  seed: int = 0, lanes: int = 1,
                  toolchain=None) -> Fig56Result:
    """The §4 analysis. Exploration rollouts run through the vectorized
    evaluation stack; ``lanes=1`` (default) keeps the dataset — and both
    heat maps — anchored to the seed, ``lanes>1`` trades that for
    batched collection throughput (lane-count invariant among
    themselves). ``toolchain`` lets a driver share an engine/service
    backend across experiments."""
    cfg = scale or get_scale()
    corpus = list(programs) if programs is not None else generate_corpus(
        cfg.n_train_programs, seed=seed)
    dataset = collect_exploration_data(corpus, episodes=cfg.exploration_episodes,
                                       episode_length=cfg.episode_length,
                                       seed=seed, toolchain=toolchain,
                                       lanes=lanes)
    analysis = analyze_importance(dataset, seed=seed)
    return Fig56Result(analysis=analysis, dataset_size=len(dataset))
