"""Tables 1–3 of the paper, regenerated from the implementation so any
drift between code and paper is caught by the table tests/benches.
"""

from __future__ import annotations

from typing import List

from ..features.table import FEATURE_NAMES
from ..passes.registry import PASS_TABLE
from ..rl.agents import TABLE3

__all__ = ["render_table1", "render_table2", "render_table3"]


def render_table1() -> str:
    lines = ["Table 1 — LLVM Transform Passes (action indices)"]
    for i in range(0, len(PASS_TABLE), 6):
        chunk = PASS_TABLE[i:i + 6]
        lines.append("  ".join(f"{i + j:>2} {name:<24}" for j, name in enumerate(chunk)))
    return "\n".join(lines)


def render_table2() -> str:
    lines = ["Table 2 — Program Features"]
    for i, name in enumerate(FEATURE_NAMES):
        lines.append(f"{i:>2}  {name}")
    return "\n".join(lines)


def render_table3() -> str:
    lines = ["Table 3 — Observation and action spaces of the deep RL agents"]
    header = f"{'':<12}" + "".join(f"{name:>12}" for name in TABLE3)
    lines.append(header)
    algos = [TABLE3[n][0] for n in TABLE3]
    lines.append(f"{'Algorithm':<12}" + "".join(f"{a:>12}" for a in algos))
    lines.append(f"{'Observation':<12}")
    for name, (algo, obs, act) in TABLE3.items():
        lines.append(f"  {name:<12} obs: {obs:<36} action: {act}")
    return "\n".join(lines)
