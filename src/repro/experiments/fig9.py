"""Figure 9 + §6.2: zero-shot generalization to unseen programs.

Protocol (paper §6.2):

* deep-RL: train PPO ('both' observation, log reward) on the random
  corpus with filtered features/passes under normalization technique 1
  (RL-filtered-norm1) and technique 2 (RL-filtered-norm2); at test time
  run ONE greedy policy rollout per benchmark with no intermediate
  profiling — a single simulator sample.
* black-box transfer: Genetic-DEAP / OpenTuner / Greedy first search for
  the single sequence minimizing the *aggregate* cycle count over the
  training corpus, then apply that predetermined sequence to each test
  benchmark — also one sample, but no adaptation.

Also reproduces the §6.2 text experiment: the trained
RL-filtered-norm2 policy applied to a fresh set of random programs
(the paper uses 12,874; the scale profile sets the count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..deploy.policy import PolicyRunner, PolicySpec
from ..hls.profiler import HLSCompilationError
from ..ir.module import Module
from ..passes.registry import NUM_TRANSFORMS
from ..programs import chstone
from ..programs.generator import generate_corpus
from ..rl.agents import train_agent
from ..search.base import SequenceEvaluator
from ..search.genetic import GAConfig, genetic_search
from ..search.greedy import greedy_search
from ..search.opentuner import OpenTunerConfig, opentuner_search
from ..toolchain import HLSToolchain
from .config import ExperimentScale, get_scale
from .fig5_fig6 import run_fig5_fig6
from .reporting import format_bar_chart, write_csv

__all__ = ["Fig9Row", "Fig9Result", "run_fig9"]


@dataclass
class Fig9Row:
    algorithm: str
    improvement_over_o3: float
    samples_per_program: float = 1.0
    per_program: Dict[str, float] = field(default_factory=dict)


@dataclass
class Fig9Result:
    rows: List[Fig9Row]
    random_program_improvement: Optional[float] = None
    n_random_test_programs: int = 0

    def row(self, algorithm: str) -> Fig9Row:
        return next(r for r in self.rows if r.algorithm == algorithm)

    def render(self) -> str:
        chart = format_bar_chart(
            [(r.algorithm, r.improvement_over_o3, int(r.samples_per_program))
             for r in self.rows])
        text = "Figure 9 — zero-shot generalization (1 sample/program)\n" + chart
        if self.random_program_improvement is not None:
            text += (f"\n§6.2: RL-filtered-norm2 on {self.n_random_test_programs} "
                     f"unseen random programs: "
                     f"{self.random_program_improvement:+.1%} vs -O3")
        return text

    def to_csv(self) -> str:
        return write_csv("fig9.csv",
                         ["algorithm", "improvement_over_o3", "samples_per_program"],
                         [[r.algorithm, r.improvement_over_o3, r.samples_per_program]
                          for r in self.rows])


class _AggregateEvaluator(SequenceEvaluator):
    """Fitness = summed cycle count over the whole training corpus."""

    def __init__(self, corpus: Sequence[Module], toolchain: HLSToolchain) -> None:
        super().__init__(corpus[0], toolchain)
        self.corpus = list(corpus)

    def __call__(self, sequence) -> int:
        seq = [int(a) % NUM_TRANSFORMS for a in sequence]
        self.samples += 1
        total = 0
        for program in self.corpus:
            try:
                total += self.toolchain.cycle_count_with_passes(program, seq)
            except HLSCompilationError:
                total += int(self.toolchain.cycle_count_with_passes(program, []) * self.penalty_factor)
        if total < self.best_cycles:
            self.best_cycles = total
            self.best_sequence = list(seq)
        self.history.append(int(self.best_cycles))
        return total


def _evaluate_sequence_on(benchmarks: Dict[str, Module], sequence: List[int],
                          o3: Dict[str, int], toolchain: HLSToolchain) -> Dict[str, float]:
    out = {}
    for name, module in benchmarks.items():
        try:
            cycles = toolchain.cycle_count_with_passes(module, sequence)
        except HLSCompilationError:
            cycles = toolchain.cycle_count_with_passes(module, [])
        out[name] = (o3[name] - cycles) / o3[name]
    return out


def run_fig9(corpus: Optional[Sequence[Module]] = None,
             benchmarks: Optional[Dict[str, Module]] = None,
             scale: Optional[ExperimentScale] = None,
             include_random_test: bool = True,
             seed: int = 0,
             toolchain: Optional[HLSToolchain] = None,
             lanes: int = 1) -> Fig9Result:
    cfg = scale or get_scale()
    toolchain = toolchain or HLSToolchain()
    corpus = list(corpus) if corpus is not None else generate_corpus(cfg.n_train_programs, seed=seed)
    benchmarks = benchmarks or chstone.build_all()

    o0 = {n: toolchain.o0_cycles(m) for n, m in benchmarks.items()}
    o3 = {n: toolchain.o3_cycles(m) for n, m in benchmarks.items()}
    rows: List[Fig9Row] = []
    rows.append(Fig9Row("-O0", float(np.mean([(o3[n] - o0[n]) / o3[n] for n in benchmarks]))))
    rows.append(Fig9Row("-O3", 0.0))

    # --- black-box transfer: search once on the aggregate corpus --------
    agg_corpus = corpus[: min(len(corpus), 8)]  # aggregate fitness is expensive
    ga_eval = _AggregateEvaluator(agg_corpus, toolchain)
    genetic_search(agg_corpus[0], GAConfig(population=cfg.ga_population,
                                           generations=max(2, cfg.ga_generations // 2),
                                           sequence_length=cfg.episode_length),
                   seed=seed, evaluator=ga_eval)
    ga_seq = ga_eval.best_sequence

    greedy_eval = _AggregateEvaluator(agg_corpus, toolchain)
    _aggregate_greedy(greedy_eval, max_length=max(2, cfg.greedy_max_length // 2))
    greedy_seq = greedy_eval.best_sequence

    ot_eval = _AggregateEvaluator(agg_corpus, toolchain)
    _aggregate_opentuner(ot_eval, rounds=max(4, cfg.opentuner_rounds // 2),
                         sequence_length=cfg.episode_length, seed=seed)
    ot_seq = ot_eval.best_sequence

    for name, seq in (("Genetic-DEAP", ga_seq), ("OpenTuner", ot_seq), ("Greedy", greedy_seq)):
        per = _evaluate_sequence_on(benchmarks, seq, o3, toolchain)
        rows.append(Fig9Row(name, float(np.mean(list(per.values()))), 1.0, per))

    # --- deep RL: train on the corpus, infer with one sample ---------------
    fig56 = run_fig5_fig6(corpus, scale=cfg, seed=seed)
    feature_indices = fig56.analysis.select_features(top_k=24)
    action_indices = fig56.analysis.select_passes(top_k=16)

    trained = {}
    for variant, norm in (("RL-filtered-norm1", "log"), ("RL-filtered-norm2", "instcount")):
        result = train_agent("RL-PPO2", corpus, episodes=cfg.fig8_episodes,
                             episode_length=cfg.episode_length, observation="both",
                             feature_indices=feature_indices,
                             action_indices=action_indices,
                             normalization=norm, reward_mode="log", seed=seed,
                             lanes=lanes)
        # Figure inference runs through the deployment subsystem's
        # PolicyRunner — the same code path `repro serve-policy` serves.
        runner = PolicyRunner(
            result.agent,
            PolicySpec(observation="both", episode_length=cfg.episode_length,
                       feature_indices=feature_indices,
                       action_indices=action_indices, normalization=norm),
            toolchain=toolchain)
        trained[variant] = runner
        per = {}
        for name, module in benchmarks.items():
            applied, optimized = runner.infer(module)
            try:
                cycles = toolchain.cycle_count(optimized)
            except HLSCompilationError:
                cycles = o3[name]
            per[name] = (o3[name] - cycles) / o3[name]
        rows.append(Fig9Row(variant, float(np.mean(list(per.values()))), 1.0, per))

    # --- §6.2: unseen random programs with RL-filtered-norm2 ---------------
    random_improvement = None
    n_test = 0
    if include_random_test:
        runner = trained["RL-filtered-norm2"]
        test_programs = generate_corpus(cfg.n_test_programs, seed=seed + 10_000)
        n_test = len(test_programs)
        improvements = []
        for module in test_programs:
            base_o3 = toolchain.o3_cycles(module)
            applied, optimized = runner.infer(module)
            try:
                cycles = toolchain.cycle_count(optimized)
            except HLSCompilationError:
                cycles = base_o3
            improvements.append((base_o3 - cycles) / base_o3 if base_o3 else 0.0)
        random_improvement = float(np.mean(improvements))

    return Fig9Result(rows=rows, random_program_improvement=random_improvement,
                      n_random_test_programs=n_test)


def _aggregate_greedy(evaluate: _AggregateEvaluator, max_length: int) -> None:
    current: List[int] = []
    current_cycles = evaluate(current)
    while len(current) < max_length:
        best_trial = None
        best_cycles = current_cycles
        for p in range(NUM_TRANSFORMS):
            for pos in range(len(current) + 1):
                trial = current[:pos] + [p] + current[pos:]
                cycles = evaluate(trial)
                if cycles < best_cycles:
                    best_cycles, best_trial = cycles, trial
        if best_trial is None:
            break
        current, current_cycles = best_trial, best_cycles


def _aggregate_opentuner(evaluate: _AggregateEvaluator, rounds: int,
                         sequence_length: int, seed: int) -> None:
    from ..search.opentuner import _GATechnique, _PSOTechnique

    rng = np.random.default_rng(seed)
    techniques = [
        _PSOTechnique("blend", sequence_length, rng),
        _PSOTechnique("own-best", sequence_length, rng),
        _PSOTechnique("global-best", sequence_length, rng),
        _GATechnique("one-point", sequence_length, rng),
        _GATechnique("two-point", sequence_length, rng),
        _GATechnique("uniform", sequence_length, rng),
    ]
    wins = [1.0] * len(techniques)
    uses = [1] * len(techniques)
    for t in range(rounds):
        scores = [wins[i] / uses[i] + np.sqrt(np.log(t + 2) / uses[i])
                  for i in range(len(techniques))]
        chosen = int(np.argmax(scores))
        improved = techniques[chosen].propose_and_evaluate(evaluate)
        uses[chosen] += 1
        wins[chosen] += 1.0 if improved else 0.0
