"""Experiment scaling.

The paper's runs take thousands of simulator samples per program; the
default profile here is scaled so every figure regenerates in minutes on
a laptop while preserving the *relative* sample budgets (Random ≫
Genetic/ES/OpenTuner ≫ Greedy ≫ RL), which is what Figure 7's
sample-efficiency axis compares.

Set ``REPRO_SCALE=full`` in the environment (or pass ``scale='full'``)
for budgets close to the paper's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    name: str
    # Figure 7 per-program budgets
    random_budget: int
    ga_population: int
    ga_generations: int
    opentuner_rounds: int
    greedy_max_length: int
    es_episodes: int
    rl_episodes: int
    episode_length: int
    multiaction_episodes: int
    # corpus sizes
    n_train_programs: int
    n_test_programs: int
    # Figure 5/6 exploration
    exploration_episodes: int
    # Figure 8 training
    fig8_episodes: int


# Relative budgets preserve Figure 7's ordering even at smoke scale:
# Random/Genetic/OpenTuner spend noticeably more samples than the RL agents.
_SMOKE = ExperimentScale(
    name="smoke",
    random_budget=150, ga_population=10, ga_generations=8, opentuner_rounds=30,
    greedy_max_length=2, es_episodes=16, rl_episodes=8, episode_length=8,
    multiaction_episodes=4, n_train_programs=6, n_test_programs=8,
    exploration_episodes=40, fig8_episodes=16,
)

_DEFAULT = ExperimentScale(
    name="default",
    random_budget=120, ga_population=14, ga_generations=8, opentuner_rounds=40,
    greedy_max_length=4, es_episodes=48, rl_episodes=24, episode_length=12,
    multiaction_episodes=10, n_train_programs=20, n_test_programs=40,
    exploration_episodes=40, fig8_episodes=60,
)

_FULL = ExperimentScale(
    name="full",
    random_budget=8400, ga_population=45, ga_generations=150, opentuner_rounds=1000,
    greedy_max_length=8, es_episodes=6080 // 45, rl_episodes=88 // 2,
    episode_length=45, multiaction_episodes=88,
    n_train_programs=100, n_test_programs=1000,
    exploration_episodes=400, fig8_episodes=400,
)

_PROFILES = {"smoke": _SMOKE, "default": _DEFAULT, "full": _FULL}


def get_scale(name: str | None = None) -> ExperimentScale:
    resolved = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return _PROFILES[resolved]
    except KeyError:
        raise ValueError(f"unknown scale {resolved!r}; choose from {sorted(_PROFILES)}") from None
