"""repro.experiments — one driver per paper table/figure.

====================  =====================================
paper artifact        driver
====================  =====================================
Table 1/2/3           :mod:`repro.experiments.tables`
Figure 5, Figure 6    :func:`repro.experiments.run_fig5_fig6`
Figure 7              :func:`repro.experiments.run_fig7`
Figure 8              :func:`repro.experiments.run_fig8`
Figure 9 + §6.2       :func:`repro.experiments.run_fig9`
§6 generalization     :func:`repro.experiments.run_generalization`
====================  =====================================

Scaling: drivers accept an :class:`ExperimentScale` (or read
``REPRO_SCALE`` = smoke/default/full from the environment).
"""

from .config import ExperimentScale, get_scale
from .fig5_fig6 import Fig56Result, run_fig5_fig6
from .fig7 import ALGORITHM_ORDER, Fig7Result, Fig7Row, run_fig7
from .fig8 import Fig8Result, VARIANTS, run_fig8
from .fig9 import Fig9Result, Fig9Row, run_fig9
from .generalization import (
    GeneralizationResult,
    GeneralizationRow,
    run_generalization,
)
from .reporting import format_bar_chart, format_heatmap, format_series, write_csv
from .tables import render_table1, render_table2, render_table3

__all__ = [
    "ExperimentScale", "get_scale",
    "Fig56Result", "run_fig5_fig6",
    "ALGORITHM_ORDER", "Fig7Result", "Fig7Row", "run_fig7",
    "Fig8Result", "VARIANTS", "run_fig8",
    "Fig9Result", "Fig9Row", "run_fig9",
    "GeneralizationResult", "GeneralizationRow", "run_generalization",
    "format_bar_chart", "format_heatmap", "format_series", "write_csv",
    "render_table1", "render_table2", "render_table3",
]
