"""Figure 7: circuit speedup and sample-size comparison.

Eleven algorithms on the nine CHStone-like benchmarks, each searching
per program: -O0, -O3, RL-PPO1 (zero-reward control), RL-PPO2
(histogram), RL-A3C (features), Greedy, RL-PPO3 (multi-action),
OpenTuner, RL-ES, Genetic-DEAP, and Random. Reports mean improvement
over -O3 and mean simulator samples per program — the paper's two axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir.module import Module
from ..programs import chstone
from ..rl.agents import train_agent
from ..search import (
    GAConfig,
    OpenTunerConfig,
    genetic_search,
    greedy_search,
    opentuner_search,
    random_search,
)
from ..toolchain import HLSToolchain
from .config import ExperimentScale, get_scale
from .reporting import format_bar_chart, write_csv

__all__ = ["Fig7Row", "Fig7Result", "run_fig7", "ALGORITHM_ORDER"]

# The paper's bar-chart order.
ALGORITHM_ORDER = ("-O0", "-O3", "RL-PPO1", "RL-PPO2", "RL-A3C", "Greedy",
                   "RL-PPO3", "OpenTuner", "RL-ES", "Genetic-DEAP", "Random")


@dataclass
class Fig7Row:
    algorithm: str
    improvement_over_o3: float     # mean over programs of (O3 - alg) / O3
    samples_per_program: float
    per_program: Dict[str, float] = field(default_factory=dict)


@dataclass
class Fig7Result:
    rows: List[Fig7Row]
    benchmarks: List[str]

    def row(self, algorithm: str) -> Fig7Row:
        return next(r for r in self.rows if r.algorithm == algorithm)

    def render(self) -> str:
        chart = format_bar_chart(
            [(r.algorithm, r.improvement_over_o3, int(r.samples_per_program))
             for r in self.rows])
        return "Figure 7 — circuit speedup over -O3 and samples/program\n" + chart

    def to_csv(self) -> str:
        return write_csv(
            "fig7.csv",
            ["algorithm", "improvement_over_o3", "samples_per_program"]
            + [f"improvement[{b}]" for b in self.benchmarks],
            [[r.algorithm, r.improvement_over_o3, r.samples_per_program]
             + [r.per_program.get(b, 0.0) for b in self.benchmarks]
             for r in self.rows],
        )


def _improvement(o3: int, cycles: float) -> float:
    return (o3 - cycles) / o3 if o3 else 0.0


def run_fig7(benchmarks: Optional[Dict[str, Module]] = None,
             scale: Optional[ExperimentScale] = None,
             algorithms: Optional[Sequence[str]] = None,
             seed: int = 0,
             toolchain: Optional[HLSToolchain] = None) -> Fig7Result:
    cfg = scale or get_scale()
    programs = benchmarks or chstone.build_all()
    names = list(programs)
    chosen = list(algorithms) if algorithms is not None else list(ALGORITHM_ORDER)

    # One shared toolchain across every black-box search: a caller can
    # hand in a service-backed one so the whole figure shares (and feeds)
    # the persistent cross-run result store.
    toolchain = toolchain or HLSToolchain()
    o0: Dict[str, int] = {}
    o3: Dict[str, int] = {}
    for name, module in programs.items():
        o0[name] = toolchain.o0_cycles(module)
        o3[name] = toolchain.o3_cycles(module)

    rows: List[Fig7Row] = []
    for algo in chosen:
        per_program: Dict[str, float] = {}
        samples: List[int] = []
        for i, (name, module) in enumerate(programs.items()):
            prog_seed = seed * 1000 + i
            if algo == "-O0":
                cycles, n = o0[name], 1
            elif algo == "-O3":
                cycles, n = o3[name], 1
            elif algo == "Random":
                r = random_search(module, budget=cfg.random_budget,
                                  sequence_length=cfg.episode_length, seed=prog_seed,
                                  toolchain=toolchain)
                cycles, n = r.best_cycles, r.samples
            elif algo == "Greedy":
                r = greedy_search(module, max_length=cfg.greedy_max_length,
                                  toolchain=toolchain)
                cycles, n = r.best_cycles, r.samples
            elif algo == "Genetic-DEAP":
                r = genetic_search(module, GAConfig(population=cfg.ga_population,
                                                    generations=cfg.ga_generations,
                                                    sequence_length=cfg.episode_length),
                                   seed=prog_seed, toolchain=toolchain)
                cycles, n = r.best_cycles, r.samples
            elif algo == "OpenTuner":
                r = opentuner_search(module, OpenTunerConfig(rounds=cfg.opentuner_rounds,
                                                             sequence_length=cfg.episode_length),
                                     seed=prog_seed, toolchain=toolchain)
                cycles, n = r.best_cycles, r.samples
            elif algo in ("RL-PPO1", "RL-PPO2", "RL-A3C", "RL-PPO3", "RL-ES"):
                episodes = cfg.es_episodes if algo == "RL-ES" else (
                    cfg.multiaction_episodes if algo == "RL-PPO3" else cfg.rl_episodes)
                r = train_agent(algo, [module], episodes=episodes,
                                episode_length=cfg.episode_length, seed=prog_seed)
                # best_cycles is None when every episode failed HLS
                # compilation — score the row as "no improvement" at -O0.
                cycles = r.best_cycles if r.best_cycles is not None else o0[name]
                n = r.samples
            else:
                raise KeyError(f"unknown algorithm {algo!r}")
            per_program[name] = _improvement(o3[name], cycles)
            samples.append(n)
        rows.append(Fig7Row(
            algorithm=algo,
            improvement_over_o3=float(np.mean(list(per_program.values()))),
            samples_per_program=float(np.mean(samples)),
            per_program=per_program,
        ))
    return Fig7Result(rows=rows, benchmarks=names)
