"""Command-line interface: regenerate any paper artifact from a shell.

    python -m repro tables
    python -m repro fig5 [--scale smoke|default|full] [--cache-stats]
    python -m repro fig7 [--scale ...] [--algorithms -O3,Random,...]
    python -m repro fig8
    python -m repro fig9
    python -m repro compile <benchmark> [--passes "-mem2reg -loop-rotate ..."]
    python -m repro serve --socket /tmp/repro.sock [--workers 4]
    python -m repro cache stats|clear|export [--store DIR]

All figure commands print the rendered artifact and write CSVs under
``results/`` (override with ``REPRO_RESULTS``). ``--cache-stats`` prints
the engine/service cache counters aggregated over every toolchain the
run created. ``serve`` exposes the sharded, persistently cached
evaluation service on a Unix socket; the ``cache`` subcommands manage
its on-disk result store.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    get_scale,
    render_table1,
    render_table2,
    render_table3,
    run_fig5_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)
from .programs import chstone
from .toolchain import HLSToolchain

__all__ = ["main"]


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=["smoke", "default", "full"], default=None,
                        help="experiment budget profile (default: $REPRO_SCALE or 'default')")


def _add_cache_stats(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-stats", action="store_true",
                        help="print aggregated engine/service cache statistics "
                             "after the run")


def _print_cache_stats() -> None:
    info = HLSToolchain.aggregate_cache_info()
    print("\ncache statistics (aggregated over run toolchains):")
    if not info:
        print("  (no cache-backed toolchains)")
        return
    for key in sorted(info):
        print(f"  {key:<24} {info[key]}")


def _cmd_serve(args) -> int:
    from .service.server import EvaluationServer

    server = EvaluationServer(args.socket, workers=args.workers,
                              store_dir=args.store)
    client = server.toolchain.engine
    print(f"evaluation service on {args.socket} "
          f"(workers={client.workers}, store={client.store.root})")
    print("ops: ping / evaluate / batch / stats / shutdown "
          "(JSON lines; see repro.service.server)")
    server.serve_forever()
    return 0


def _cmd_cache(args) -> int:
    from .service.store import ResultStore

    store = ResultStore(args.store)
    if args.action == "stats":
        for key, value in store.stats().items():
            print(f"{key:<18} {value}")
    elif args.action == "clear":
        print(f"removed {store.clear()} shard(s) from {store.root}")
    elif args.action == "export":
        count = store.export(args.out)
        print(f"exported {count} record(s) to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 1-3")
    for fig in ("fig5", "fig7", "fig8", "fig9"):
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        _add_scale(p)
        _add_cache_stats(p)
        if fig == "fig7":
            p.add_argument("--algorithms", default=None,
                           help="comma-separated subset of the Figure 7 algorithms")

    pc = sub.add_parser("compile", help="compile one benchmark with a pass sequence")
    pc.add_argument("benchmark", choices=list(chstone.BENCHMARK_NAMES))
    pc.add_argument("--passes", default="",
                    help="space-separated Table-1 pass names (default: -O3 pipeline)")
    _add_cache_stats(pc)

    ps = sub.add_parser("serve", help="run the evaluation service on a Unix socket")
    ps.add_argument("--socket", default="/tmp/repro-eval.sock",
                    help="Unix socket path (default: /tmp/repro-eval.sock)")
    ps.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: $REPRO_SERVICE_WORKERS or cpu-based)")
    ps.add_argument("--store", default=None,
                    help="persistent store root (default: $REPRO_CACHE_DIR or .repro-cache)")

    pk = sub.add_parser("cache", help="manage the persistent result store")
    pk.add_argument("action", choices=["stats", "clear", "export"])
    pk.add_argument("--store", default=None,
                    help="store root (default: $REPRO_CACHE_DIR or .repro-cache)")
    pk.add_argument("--out", default="repro-cache-export.json",
                    help="export destination (cache export)")

    args = parser.parse_args(argv)

    if args.command == "tables":
        print(render_table1())
        print()
        print(render_table2())
        print()
        print(render_table3())
        return 0

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "cache":
        return _cmd_cache(args)

    if args.command == "compile":
        tc = HLSToolchain()
        module = chstone.build(args.benchmark)
        o0 = tc.o0_cycles(module)
        seq = args.passes.split() if args.passes else tc.o3_sequence()
        cycles = tc.cycle_count_with_passes(module, seq)
        print(f"{args.benchmark}: -O0 {o0} cycles -> {cycles} cycles "
              f"({(o0 - cycles) / o0:+.1%}) with {len(seq)} passes")
        if args.cache_stats:
            _print_cache_stats()
        return 0

    scale = get_scale(args.scale)
    if args.command == "fig5":
        result = run_fig5_fig6(scale=scale)
        print(result.render_fig5())
        print()
        print(result.render_fig6())
        result.to_csv()
    elif args.command == "fig7":
        algorithms = args.algorithms.split(",") if args.algorithms else None
        result = run_fig7(scale=scale, algorithms=algorithms)
        print(result.render())
        result.to_csv()
    elif args.command == "fig8":
        result = run_fig8(scale=scale)
        print(result.render())
        result.to_csv()
    elif args.command == "fig9":
        result = run_fig9(scale=scale)
        print(result.render())
        result.to_csv()
    if args.cache_stats:
        _print_cache_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
