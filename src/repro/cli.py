"""Command-line interface: regenerate any paper artifact from a shell.

    python -m repro tables
    python -m repro fig5 [--scale smoke|default|full] [--lanes N] [--cache-stats]
    python -m repro fig7 [--scale ...] [--algorithms -O3,Random,...]
    python -m repro fig8 [--lanes N]
    python -m repro fig9 [--lanes N]
    python -m repro train [--agent RL-PPO2] [--lanes N] [--checkpoint PATH]
                          [--prune-features K] [--prune-passes K]
                          [--register NAME] [--registry DIR]
    python -m repro compile <benchmark> [--passes "-mem2reg -loop-rotate ..."]
    python -m repro serve --socket /tmp/repro.sock [--workers 4]
    python -m repro serve-policy --socket /tmp/repro-policy.sock
                          [--policy NAME ...] [--registry DIR]
    python -m repro optimize <benchmark|gen:N> --policy NAME [--refine K]
                          [--registry DIR | --socket PATH]
    python -m repro generalize [--scale ...] [--policy NAME] [--refine K]
    python -m repro models list|show|rm [NAME] [--registry DIR]
    python -m repro profile-hotspots <benchmark> [--passes "..."]
                          [--sim-kernels off|on|verify]
                          [--sim-batch off|on|verify]
                          [--sim-simd off|on|verify] [--batch-lanes N]
                          [--top N] [--sort KEY] [--json PATH]
    python -m repro cache stats|clear|export [--store DIR]
    python -m repro stats [--json] [--watch N] [--log PATH] [--socket PATH]
    python -m repro trace [list|show|export] [--trace ID] [--chrome]
                          [--out PATH] [--log PATH]
    python -m repro slo check --config PATH [--log PATH | --socket PATH]
    python -m repro bench-trend [--root DIR] [--window N] [--tolerance F]

All figure commands print the rendered artifact and write CSVs under
``results/`` (override with ``REPRO_RESULTS``). ``--cache-stats`` prints
the engine/service cache counters aggregated over every toolchain the
run created. ``serve`` exposes the sharded, persistently cached
evaluation service on a Unix socket; the ``cache`` subcommands manage
its on-disk result store. ``train`` drives one Table-3 agent through
the vectorized trainer — ``--lanes N`` batches N episodes per policy
step, ``--checkpoint`` saves (and, when the file exists, resumes)
policy weights + normalizer + RNG state, and
``--prune-features K`` / ``--prune-passes K`` run the paper's §4
pipeline first: collect exploration rollouts through the evaluation
stack, fit the per-pass random forests, and train the agent on the
pruned observation/action spaces.

``stats`` renders the telemetry spine's cross-process dashboard (set
``REPRO_TELEMETRY=on`` on the instrumented runs; they leave JSONL
snapshots under ``.repro-telemetry/``, or answer the ``metrics`` op
live over ``--socket``). ``trace`` reads the span log written under
``REPRO_TELEMETRY=trace`` — per-trace waterfalls across client, server
and worker processes, plus Chrome trace-event export for Perfetto.
``slo check`` evaluates a declarative target config (p99 span latency,
error rate, cache hit-rate) against the same telemetry and exits
non-zero on violation; ``bench-trend`` gates the committed
``BENCH_*.json`` trajectories against their trailing window.

The deployment commands close the train → serve loop: ``train
--register NAME`` stores the trained policy in the content-addressed
model registry, ``serve-policy`` exposes registered policies with
cross-request batched inference on a Unix socket, ``optimize`` asks a
policy (local registry load, or ``--socket`` for a running server) for
a verified pass ordering on one program, ``generalize`` runs the
train-on-generated / serve-on-held-out harness, and ``models`` manages
the registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    get_scale,
    render_table1,
    render_table2,
    render_table3,
    run_fig5_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)
from .programs import chstone
from .toolchain import HLSToolchain

__all__ = ["main"]


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=["smoke", "default", "full"], default=None,
                        help="experiment budget profile (default: $REPRO_SCALE or 'default')")


def _add_cache_stats(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-stats", action="store_true",
                        help="print aggregated engine/service cache statistics "
                             "after the run")


def _print_cache_stats() -> None:
    from .interp.batch_exec import batch_exec_info
    from .interp.interpreter import plan_cache_info
    from .interp.kernels import kernel_cache_info
    from .telemetry.render import render_cache_table

    info = HLSToolchain.aggregate_cache_info()
    print("\ncache statistics (aggregated over run toolchains):")
    if not info:
        print("  (no cache-backed toolchains)")
        return
    for key in sorted(info):
        print(f"  {key:<24} {info[key]}")
    # Hit-rate view over the whole hierarchy: the aggregate deliberately
    # excludes the process-wide kernel/plan caches as non-additive, so
    # fold them back in here for the rendered table.
    merged = dict(info)
    merged.update(kernel_cache_info())
    merged.update(plan_cache_info())
    merged.update(batch_exec_info())
    print()
    print(render_cache_table(merged))


def _cmd_serve(args) -> int:
    from .service.server import EvaluationServer

    server = EvaluationServer(args.socket, workers=args.workers,
                              store_dir=args.store)
    client = server.toolchain.engine
    print(f"evaluation service on {args.socket} "
          f"(workers={client.workers}, store={client.store.root})")
    print("ops: ping / evaluate / batch / stats / shutdown "
          "(JSON lines; see repro.service.server)")
    server.serve_forever()
    return 0


def _cmd_train(args) -> int:
    import os

    from .programs.generator import generate_corpus
    from .rl.trainer import Trainer

    scale = get_scale(args.scale)
    if args.benchmark:
        programs = [chstone.build(args.benchmark)]
        source = f"benchmark {args.benchmark!r}"
    else:
        programs = generate_corpus(scale.n_train_programs, seed=args.seed)
        source = f"{len(programs)} random programs"
    episodes = args.episodes if args.episodes is not None else scale.fig8_episodes
    prune_episodes = (args.prune_episodes if args.prune_episodes is not None
                      else scale.exploration_episodes)
    if args.prune_features is not None or args.prune_passes is not None:
        print(f"pruning stage: {prune_episodes} "
              f"exploration episodes -> random forests -> "
              f"top {args.prune_features if args.prune_features is not None else 'all'} features / "
              f"top {args.prune_passes if args.prune_passes is not None else 'all'} passes")
    trainer = Trainer(
        args.agent, programs, episodes=episodes, lanes=args.lanes,
        episode_length=scale.episode_length,
        observation=args.observation,
        normalization=None if args.normalization == "none" else args.normalization,
        reward_mode="log",
        normalize_observations=args.obs_norm, seed=args.seed,
        prune_features=args.prune_features, prune_passes=args.prune_passes,
        prune_episodes=prune_episodes, events_path=args.events)
    if trainer.pruning is not None:
        pruned = trainer.pruning
        feats = (f"{len(pruned.feature_indices)} features"
                 if pruned.feature_indices is not None else "all features")
        acts = (f"{len(pruned.action_indices)} actions"
                if pruned.action_indices is not None else "all actions")
        print(f"pruned spaces: {feats}, {acts} "
              f"(from {pruned.dataset_size} exploration samples)")
    if args.checkpoint and os.path.exists(args.checkpoint):
        trainer.restore(args.checkpoint)
        print(f"resumed from {args.checkpoint} "
              f"({trainer.episodes_done}/{episodes} episodes done)")
    print(f"training {args.agent} on {source}: {episodes} episodes, "
          f"{args.lanes} lane(s)")
    result = trainer.train()
    if args.checkpoint:
        trainer.save_checkpoint(args.checkpoint)
        print(f"checkpoint saved to {args.checkpoint}")
    if args.register:
        from .deploy.registry import ModelRegistry

        registry = ModelRegistry(args.registry)
        entry_id = registry.register(args.register, trainer)
        print(f"policy registered as {args.register!r} "
              f"({entry_id}) in {registry.root}")
    curve = result.episode_reward_mean()
    best = result.best_cycles if result.best_cycles is not None else "n/a"
    print(f"episodes {len(result.episode_rewards)}  "
          f"best_cycles {best}  candidate evaluations {result.samples}  "
          f"simulator samples {trainer.vec.toolchain.samples_taken}")
    if curve:
        print(f"episode-reward-mean: first {curve[0]:+.3f}  last {curve[-1]:+.3f}")
    print(f"wall-clock {trainer.seconds['total']:.2f}s "
          f"(rollout {trainer.seconds['rollout']:.2f}s, "
          f"update {trainer.seconds['update']:.2f}s)")
    if args.cache_stats:
        _print_cache_stats()
    return 0


def _cmd_serve_policy(args) -> int:
    from .deploy.server import PolicyServer

    server = PolicyServer(args.socket, registry_root=args.registry,
                          policies=args.policy or None,
                          allow_mismatch=args.allow_mismatch)
    names = ", ".join(sorted(server._runners)) or "(lazy-loaded on request)"
    print(f"policy inference service on {args.socket} "
          f"(registry={server.registry.root}, policies: {names})")
    print("ops: ping / infer / optimize / policies / stats / shutdown "
          "(JSON lines; see repro.deploy.server)")
    server.serve_forever()
    return 0


def _cmd_optimize(args) -> int:
    from .passes.registry import pass_name_for_index
    from .service.server import resolve_program_spec

    if args.socket:
        from .deploy.client import InferenceClient

        with InferenceClient(args.socket) as client:
            decision = client.optimize(args.program, policy=args.policy,
                                       refine=args.refine, seed=args.seed)
    else:
        from .deploy.registry import ModelRegistry

        registry = ModelRegistry(args.registry)
        runner = registry.load(args.policy, toolchain=HLSToolchain(),
                               allow_mismatch=args.allow_mismatch)
        module = resolve_program_spec(args.program)
        decision = runner.optimize(module, refine=args.refine,
                                   seed=args.seed).to_json()
    names = " ".join(a if isinstance(a, str) else pass_name_for_index(a)
                     for a in decision["sequence"])
    print(f"{args.program}: {decision['cycles']} cycles vs "
          f"-O3 {decision['o3_cycles']} "
          f"({decision['improvement_over_o3']:+.1%}), "
          f"source: {decision['source']}, "
          f"{decision['evaluations']} candidate evaluation(s)")
    if decision["source"] != "policy" and decision["policy_cycles"] is not None:
        print(f"  policy alone: {decision['policy_cycles']} cycles")
    print(f"  sequence: {names or '(empty — -O0)'}")
    return 0


def _cmd_generalize(args) -> int:
    from .deploy.registry import ModelRegistry
    from .experiments import run_generalization

    result = run_generalization(
        scale=get_scale(args.scale), seed=args.seed, lanes=args.lanes,
        registry=ModelRegistry(args.registry), policy_name=args.policy,
        episodes=args.episodes, search_budget=args.search_budget,
        refine=args.refine)
    print(result.render())
    result.to_csv()
    print(f"\npolicy registered as {result.policy_name!r} "
          f"({result.entry_id}); training took {result.train_seconds:.1f}s")
    if args.cache_stats:
        _print_cache_stats()
    return 0


def _cmd_models(args) -> int:
    from .deploy.registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    if args.action == "list":
        entries = registry.entries()
        if not entries:
            print(f"(no policies registered under {registry.root})")
            return 0
        print(f"{'name':<24} {'id':<18} {'agent':<10} {'obs':<10} "
              f"{'episodes':>8}  toolchain")
        for e in entries:
            print(f"{e['name']:<24} {e['id']:<18} {str(e['agent']):<10} "
                  f"{str(e['observation']):<10} {str(e['episodes']):>8}  "
                  f"{e['toolchain']}")
    elif args.action == "show":
        import json as _json

        if not args.name:
            print("models show needs a policy NAME", file=sys.stderr)
            return 2
        print(_json.dumps(registry.meta(args.name), indent=2, sort_keys=True))
    elif args.action == "rm":
        if not args.name:
            print("models rm needs a policy NAME", file=sys.stderr)
            return 2
        entry_id = registry.remove(args.name)
        print(f"removed {args.name!r} (object {entry_id} kept on disk)")
    return 0


def _cmd_profile_hotspots(args) -> int:
    import cProfile
    import json
    import pstats

    from .hls.profiler import CycleProfiler
    from .toolchain import clone_module

    module = chstone.build(args.benchmark)
    seq = args.passes.split() if args.passes else HLSToolchain().o3_sequence()
    candidate = clone_module(module)
    HLSToolchain.apply_passes(candidate, seq)
    # One *cold* evaluation: a fresh profiler (empty schedule cache), the
    # path a first-time sequence pays inside the engine.
    profiler = CycleProfiler(sim_kernels=args.sim_kernels,
                             sim_batch=args.sim_batch,
                             sim_simd=args.sim_simd)
    if args.batch_lanes is not None and profiler.sim_batch == "off":
        print("--batch-lanes requires batched execution; it has no effect "
              "with --sim-batch off (serial profiling)", file=sys.stderr)
        return 2
    lanes = args.batch_lanes if args.batch_lanes is not None else 8
    run = cProfile.Profile()
    if profiler.sim_batch != "off":
        # Profile the batched hot path the engine actually takes for
        # populations: a wave of execution-equivalent lanes.
        wave = [candidate] + [clone_module(candidate)
                              for _ in range(max(1, lanes) - 1)]
        run.enable()
        reports = profiler.profile_batch(wave)
        run.disable()
        report = reports[0]
        if isinstance(report, BaseException):
            raise report
    else:
        run.enable()
        report = profiler.profile(candidate)
        run.disable()
    print(f"{args.benchmark}: {report.cycles} cycles after {len(seq)} passes "
          f"(sim_kernels={profiler.sim_kernels}, "
          f"sim_batch={profiler.sim_batch}, sim_simd={profiler.sim_simd})")
    stats = pstats.Stats(run, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.json:
        sort_field = {"cumulative": "cumtime", "tottime": "tottime",
                      "ncalls": "ncalls"}[args.sort]
        rows = []
        for (filename, lineno, funcname), \
                (primitive, ncalls, tottime, cumtime, _callers) in \
                stats.stats.items():
            rows.append({"file": filename, "line": lineno,
                         "function": funcname, "ncalls": ncalls,
                         "primitive_calls": primitive,
                         "tottime": round(tottime, 6),
                         "cumtime": round(cumtime, 6)})
        rows.sort(key=lambda r: r[sort_field], reverse=True)
        payload = {"benchmark": args.benchmark, "cycles": report.cycles,
                   "passes": len(seq), "sim_kernels": profiler.sim_kernels,
                   "sim_batch": profiler.sim_batch,
                   "sim_simd": profiler.sim_simd,
                   "sort": args.sort, "hotspots": rows[:args.top]}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {min(len(rows), args.top)} hotspot row(s) to {args.json}")
    return 0


def _cmd_stats(args) -> int:
    import json
    import os
    import time

    from . import telemetry
    from .telemetry.render import aggregate, render_dashboard, summarize

    def collect():
        if args.socket:
            # Live registries from a running server (evaluation or
            # policy — both answer the metrics op).
            from .service.server import request

            reply = request(args.socket, {"op": "metrics"})
            if not reply.get("ok"):
                raise RuntimeError(f"metrics op failed: "
                                   f"{reply.get('error', reply)}")
            records = reply.get("snapshots") or []
        else:
            records = list(telemetry.read_log(args.log).values())
        return aggregate(rec["snapshot"] for rec in records
                         if rec.get("snapshot"))

    def show() -> None:
        aggregated = collect()
        if args.json:
            print(json.dumps(summarize(aggregated), indent=2, sort_keys=True))
        else:
            source = (f"socket {args.socket}" if args.socket
                      else args.log or os.environ.get("REPRO_TELEMETRY_LOG")
                      or telemetry.DEFAULT_LOG_PATH)
            if not aggregated.get("processes"):
                print(f"(no snapshots yet — source: {source}; run an "
                      f"instrumented command with REPRO_TELEMETRY=on)")
                return
            print(render_dashboard(aggregated))
            print(f"\nsource: {source}")

    if args.watch:
        try:
            while True:
                print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
                try:
                    show()
                except (OSError, RuntimeError) as exc:
                    # Watching a server that has not started (or a log
                    # that does not exist yet) should keep polling, not
                    # die on the first refresh.
                    print(f"(no snapshots yet: {exc})")
                time.sleep(args.watch)
        except KeyboardInterrupt:
            pass
        return 0
    show()
    return 0


def _cmd_trace(args) -> int:
    import json
    import os

    from .telemetry import read_trace_log, trace
    from .telemetry.export import DEFAULT_TRACE_LOG_PATH

    log = args.log or os.environ.get("REPRO_TELEMETRY_TRACE_LOG") \
        or DEFAULT_TRACE_LOG_PATH
    if args.action == "export":
        out = args.out or "repro-trace.json"
        count = trace.write_chrome_trace(out, log_path=log,
                                         trace_id=args.trace)
        print(f"wrote {count} span event(s) to {out} "
              f"(chrome://tracing / Perfetto format)")
        return 0
    events = read_trace_log(log)
    traces = trace.assemble_traces(events)
    if args.action == "show":
        trace_id = args.trace
        if trace_id is None:
            # Default to the newest trace — the one just produced.
            real = {k: v for k, v in traces.items() if k != "-"}
            if not real:
                print(f"(no traces recorded yet — source: {log}; run with "
                      f"REPRO_TELEMETRY=trace)")
                return 0
            trace_id = max(real, key=lambda k: max(
                s.get("start") or 0.0 for s in real[k]))
        spans = traces.get(trace_id)
        if not spans:
            print(f"unknown trace id {trace_id!r} in {log}")
            return 1
        if args.json:
            print(json.dumps(spans, indent=2, sort_keys=True))
        else:
            print(trace.render_waterfall(trace_id, spans))
        return 0
    # list (default)
    if not traces:
        print(f"(no traces recorded yet — source: {log}; run with "
              f"REPRO_TELEMETRY=trace)")
        return 0
    print(trace.render_trace_list(traces))
    print(f"\nsource: {log}")
    return 0


def _cmd_slo(args) -> int:
    import json

    from . import telemetry
    from .telemetry import slo
    from .telemetry.render import aggregate

    targets = slo.load_config(args.config)
    if args.socket:
        from .service.server import request

        reply = request(args.socket, {"op": "metrics"})
        if not reply.get("ok"):
            print(f"metrics op failed: {reply.get('error', reply)}",
                  file=sys.stderr)
            return 2
        records = reply.get("snapshots") or []
    else:
        records = list(telemetry.read_log(args.log).values())
    aggregated = aggregate(rec["snapshot"] for rec in records
                           if rec.get("snapshot"))
    results = slo.evaluate_slos(aggregated, targets)
    if args.json:
        print(json.dumps([r.to_json() for r in results],
                         indent=2, sort_keys=True))
    else:
        print(slo.render_slo_report(results))
    return 0 if all(r.ok for r in results) else 1


def _cmd_bench_trend(args) -> int:
    import json

    from .telemetry import trend

    window = trend.DEFAULT_WINDOW if args.window is None else args.window
    tolerance = (trend.DEFAULT_TOLERANCE if args.tolerance is None
                 else args.tolerance)
    entries = trend.check_trends(args.root, window=window,
                                 tolerance=tolerance)
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
    else:
        print(trend.render_trend_report(entries, verbose=args.verbose))
    return 1 if any(e["status"] == "regressed" for e in entries) else 0


def _cmd_cache(args) -> int:
    from .service.store import ResultStore

    store = ResultStore(args.store)
    if args.action == "stats":
        for key, value in store.stats().items():
            print(f"{key:<18} {value}")
        from .interp.batch_exec import batch_exec_info
        from .interp.interpreter import plan_cache_info
        from .interp.kernels import kernel_cache_info
        from .telemetry.render import render_cache_table

        info = HLSToolchain.aggregate_cache_info()
        info.update(kernel_cache_info())
        info.update(plan_cache_info())
        info.update(batch_exec_info())
        print("\nin-process cache hierarchy:")
        print(render_cache_table(info))
    elif args.action == "clear":
        print(f"removed {store.clear()} shard(s) from {store.root}")
    elif args.action == "export":
        count = store.export(args.out)
        print(f"exported {count} record(s) to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 1-3")
    for fig in ("fig5", "fig7", "fig8", "fig9"):
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        _add_scale(p)
        _add_cache_stats(p)
        if fig == "fig7":
            p.add_argument("--algorithms", default=None,
                           help="comma-separated subset of the Figure 7 algorithms")
        if fig == "fig5":
            p.add_argument("--lanes", type=int, default=1,
                           help="vectorized exploration lanes for the forest "
                                "dataset (1 = seed-anchored sequential stream)")
        if fig in ("fig8", "fig9"):
            p.add_argument("--lanes", type=int, default=1,
                           help="vectorized rollout lanes for the RL training "
                                "(1 = bit-anchored sequential loop)")

    pt = sub.add_parser("train", help="train one Table-3 agent (vectorized)")
    from .rl.agents import AGENT_NAMES as _AGENTS

    pt.add_argument("--agent", choices=list(_AGENTS), default="RL-PPO2")
    pt.add_argument("--episodes", type=int, default=None,
                    help="episode budget (default: the scale profile's fig8 budget)")
    pt.add_argument("--lanes", type=int, default=1,
                    help="parallel episode lanes (batched policy + evaluation)")
    pt.add_argument("--checkpoint", default=None,
                    help="checkpoint file: resumed from when it exists, "
                         "saved to after training")
    pt.add_argument("--benchmark", choices=list(chstone.BENCHMARK_NAMES),
                    default=None,
                    help="train on one CHStone-like benchmark instead of the "
                         "random corpus")
    pt.add_argument("--observation", choices=["features", "histogram", "both"],
                    default=None,
                    help="override the agent's Table-3 observation space "
                         "(default: the agent's own; 'both' is the Fig 8 "
                         "generalization setup)")
    pt.add_argument("--normalization", choices=["none", "log", "instcount"],
                    default="none",
                    help="feature normalization (§5.3): default 'none' is the "
                         "Table-3 setup; 'instcount' is the Fig 8 "
                         "generalization choice")
    pt.add_argument("--obs-norm", action="store_true",
                    help="whiten observations with a running normalizer")
    pt.add_argument("--prune-features", type=int, default=None, metavar="K",
                    help="§4 pruning: collect exploration data, fit the "
                         "random forests, train on the top-K program features")
    pt.add_argument("--prune-passes", type=int, default=None, metavar="K",
                    help="§4 pruning: restrict the action space to the top-K "
                         "passes the forests find impactful (+ -terminate)")
    pt.add_argument("--prune-episodes", type=int, default=None,
                    help="exploration budget of the pruning stage "
                         "(default: the scale profile's exploration episodes)")
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--events", default=None, metavar="PATH",
                    help="append per-wave / per-update training events as "
                         "JSONL to PATH (also: $REPRO_TRAIN_EVENTS)")
    pt.add_argument("--register", default=None, metavar="NAME",
                    help="store the trained policy in the model registry "
                         "under NAME (ready for `repro serve-policy`)")
    pt.add_argument("--registry", default=None,
                    help="model registry root (default: $REPRO_MODEL_DIR "
                         "or .repro-models)")
    _add_scale(pt)
    _add_cache_stats(pt)

    pc = sub.add_parser("compile", help="compile one benchmark with a pass sequence")
    pc.add_argument("benchmark", choices=list(chstone.BENCHMARK_NAMES))
    pc.add_argument("--passes", default="",
                    help="space-separated Table-1 pass names (default: -O3 pipeline)")
    _add_cache_stats(pc)

    ps = sub.add_parser("serve", help="run the evaluation service on a Unix socket")
    ps.add_argument("--socket", default="/tmp/repro-eval.sock",
                    help="Unix socket path (default: /tmp/repro-eval.sock)")
    ps.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: $REPRO_SERVICE_WORKERS or cpu-based)")
    ps.add_argument("--store", default=None,
                    help="persistent store root (default: $REPRO_CACHE_DIR or .repro-cache)")

    pp = sub.add_parser("serve-policy",
                        help="serve registered policies with cross-request "
                             "batched inference")
    pp.add_argument("--socket", default="/tmp/repro-policy.sock",
                    help="Unix socket path (default: /tmp/repro-policy.sock)")
    pp.add_argument("--policy", action="append", default=None, metavar="NAME",
                    help="registry policy to preload (repeatable; first is "
                         "the default; omit to lazy-load on request)")
    pp.add_argument("--registry", default=None,
                    help="model registry root (default: $REPRO_MODEL_DIR "
                         "or .repro-models)")
    pp.add_argument("--allow-mismatch", action="store_true",
                    help="serve policies whose toolchain fingerprint does "
                         "not match (danger: actions may be remapped)")

    po = sub.add_parser("optimize",
                        help="ask a trained policy for a verified pass "
                             "ordering on one program")
    po.add_argument("program",
                    help="CHStone benchmark name or 'gen:<seed>' for a "
                         "random program")
    po.add_argument("--policy", required=True,
                    help="registered policy name (or entry id)")
    po.add_argument("--registry", default=None,
                    help="model registry root (default: $REPRO_MODEL_DIR "
                         "or .repro-models)")
    po.add_argument("--socket", default=None,
                    help="query a running `repro serve-policy` server "
                         "instead of loading the policy locally")
    po.add_argument("--refine", type=int, default=0, metavar="K",
                    help="search-refinement budget when the policy "
                         "underperforms -O3 (default 0: plain fallback)")
    po.add_argument("--allow-mismatch", action="store_true",
                    help="load despite a toolchain fingerprint mismatch")
    po.add_argument("--seed", type=int, default=0)

    pg = sub.add_parser("generalize",
                        help="train-on-generated / serve-on-held-out "
                             "generalization harness")
    pg.add_argument("--policy", default="generalization-ppo2",
                    help="registry name for the trained policy")
    pg.add_argument("--registry", default=None,
                    help="model registry root (default: $REPRO_MODEL_DIR "
                         "or .repro-models)")
    pg.add_argument("--episodes", type=int, default=None,
                    help="training episode budget (default: the scale "
                         "profile's fig8 budget)")
    pg.add_argument("--search-budget", type=int, default=None,
                    help="random-search samples per held-out program "
                         "(default: 2x episode length)")
    pg.add_argument("--refine", type=int, default=0, metavar="K",
                    help="per-program refinement budget for the served "
                         "decision")
    pg.add_argument("--lanes", type=int, default=1)
    pg.add_argument("--seed", type=int, default=0)
    _add_scale(pg)
    _add_cache_stats(pg)

    pm = sub.add_parser("models", help="manage the policy model registry")
    pm.add_argument("action", choices=["list", "show", "rm"])
    pm.add_argument("name", nargs="?", default=None,
                    help="policy name (show/rm)")
    pm.add_argument("--registry", default=None,
                    help="model registry root (default: $REPRO_MODEL_DIR "
                         "or .repro-models)")

    ph = sub.add_parser("profile-hotspots",
                        help="cProfile one cold evaluation of a benchmark "
                             "(where does simulator time actually go?)")
    ph.add_argument("benchmark", choices=list(chstone.BENCHMARK_NAMES))
    ph.add_argument("--passes", default="",
                    help="space-separated Table-1 pass names applied before "
                         "profiling (default: -O3 pipeline)")
    ph.add_argument("--sim-kernels", choices=["off", "on", "verify"],
                    default=None,
                    help="simulation backend under the profile "
                         "(default: $REPRO_SIM_KERNELS or 'on')")
    ph.add_argument("--sim-batch", choices=["off", "on", "verify"],
                    default=None,
                    help="batched-execution mode under the profile; when not "
                         "'off' the candidate is profiled as a batch-of-8 "
                         "wave through the data-parallel executor "
                         "(default: $REPRO_SIM_BATCH or 'on')")
    ph.add_argument("--sim-simd", choices=["off", "on", "verify"],
                    default=None,
                    help="typed-SIMD column tier under batched execution "
                         "(default: $REPRO_SIM_SIMD or 'on')")
    ph.add_argument("--batch-lanes", type=int, default=None,
                    help="wave width for --sim-batch profiling (default 8; "
                         "rejected when --sim-batch is 'off')")
    ph.add_argument("--top", type=int, default=25,
                    help="number of stat rows to print (default 25)")
    ph.add_argument("--sort", choices=["cumulative", "tottime", "ncalls"],
                    default="cumulative",
                    help="pstats sort order (default cumulative)")
    ph.add_argument("--json", default=None, metavar="PATH",
                    help="additionally write the hotspot rows as JSON to PATH "
                         "(machine-readable: file/line/function/ncalls/"
                         "tottime/cumtime)")

    pst = sub.add_parser("stats",
                         help="render the telemetry dashboard (latency "
                              "histograms with p50/p90/p99, counters, gauges) "
                              "merged across processes")
    pst.add_argument("--json", action="store_true",
                     help="print the aggregated summary as JSON instead of "
                          "the dashboard")
    pst.add_argument("--watch", type=float, default=None, metavar="N",
                     help="refresh every N seconds until interrupted")
    pst.add_argument("--log", default=None,
                     help="telemetry JSONL log to read (default: "
                          "$REPRO_TELEMETRY_LOG or .repro-telemetry/"
                          "metrics.jsonl)")
    pst.add_argument("--socket", default=None,
                     help="query a running repro server's `metrics` op "
                          "instead of reading the log")

    ptr = sub.add_parser("trace",
                         help="inspect distributed request traces recorded "
                              "under REPRO_TELEMETRY=trace")
    ptr.add_argument("action", nargs="?", default="list",
                     choices=["list", "show", "export"],
                     help="list traces, show one waterfall, or export "
                          "Chrome trace-event JSON (default: list)")
    ptr.add_argument("--trace", default=None, metavar="ID",
                     help="trace id to show/export (show defaults to the "
                          "newest trace; export defaults to all)")
    ptr.add_argument("--log", default=None,
                     help="trace JSONL log to read (default: "
                          "$REPRO_TELEMETRY_TRACE_LOG or .repro-telemetry/"
                          "trace.jsonl)")
    ptr.add_argument("--chrome", action="store_true",
                     help="alias for the 'export' action")
    ptr.add_argument("--out", default=None,
                     help="chrome trace output path (default "
                          "repro-trace.json)")
    ptr.add_argument("--json", action="store_true",
                     help="print span records as JSON instead of the "
                          "waterfall (show)")

    psl = sub.add_parser("slo",
                         help="evaluate declarative latency/error/hit-rate "
                              "targets against recorded telemetry")
    psl.add_argument("action", choices=["check"])
    psl.add_argument("--config", required=True,
                     help="JSON SLO config ({\"slos\": [...]})")
    psl.add_argument("--log", default=None,
                     help="telemetry JSONL log to read (default: "
                          "$REPRO_TELEMETRY_LOG or .repro-telemetry/"
                          "metrics.jsonl)")
    psl.add_argument("--socket", default=None,
                     help="query a running server's `metrics` op instead "
                          "of reading the log")
    psl.add_argument("--json", action="store_true",
                     help="print per-target results as JSON")

    pbt = sub.add_parser("bench-trend",
                         help="gate benchmark trajectories: flag metrics "
                              "whose newest point regressed beyond tolerance "
                              "vs the trailing window")
    pbt.add_argument("--root", default=".",
                     help="directory holding BENCH_*.json (default: .)")
    pbt.add_argument("--window", type=int, default=None,
                     help="trailing points to compare against (default 5)")
    pbt.add_argument("--tolerance", type=float, default=None,
                     help="allowed fractional slack beyond the window's "
                          "worst point (default 0.25)")
    pbt.add_argument("--json", action="store_true",
                     help="print per-metric entries as JSON")
    pbt.add_argument("--verbose", action="store_true",
                     help="show every metric, not just regressions")

    pk = sub.add_parser("cache", help="manage the persistent result store")
    pk.add_argument("action", choices=["stats", "clear", "export"])
    pk.add_argument("--store", default=None,
                    help="store root (default: $REPRO_CACHE_DIR or .repro-cache)")
    pk.add_argument("--out", default="repro-cache-export.json",
                    help="export destination (cache export)")

    args = parser.parse_args(argv)

    # Start the JSONL snapshot exporter when REPRO_TELEMETRY is on, so
    # every instrumented command leaves a metrics trail for `repro stats`.
    from . import telemetry
    telemetry.init_process()

    if args.command == "stats":
        return _cmd_stats(args)

    if args.command == "trace":
        if args.chrome:
            args.action = "export"
        return _cmd_trace(args)

    if args.command == "slo":
        return _cmd_slo(args)

    if args.command == "bench-trend":
        return _cmd_bench_trend(args)

    if args.command == "tables":
        print(render_table1())
        print()
        print(render_table2())
        print()
        print(render_table3())
        return 0

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "serve-policy":
        return _cmd_serve_policy(args)

    if args.command == "optimize":
        return _cmd_optimize(args)

    if args.command == "generalize":
        return _cmd_generalize(args)

    if args.command == "models":
        return _cmd_models(args)

    if args.command == "cache":
        return _cmd_cache(args)

    if args.command == "profile-hotspots":
        return _cmd_profile_hotspots(args)

    if args.command == "train":
        return _cmd_train(args)

    if args.command == "compile":
        tc = HLSToolchain()
        module = chstone.build(args.benchmark)
        o0 = tc.o0_cycles(module)
        seq = args.passes.split() if args.passes else tc.o3_sequence()
        cycles = tc.cycle_count_with_passes(module, seq)
        print(f"{args.benchmark}: -O0 {o0} cycles -> {cycles} cycles "
              f"({(o0 - cycles) / o0:+.1%}) with {len(seq)} passes")
        if args.cache_stats:
            _print_cache_stats()
        return 0

    scale = get_scale(args.scale)
    if args.command == "fig5":
        result = run_fig5_fig6(scale=scale, lanes=args.lanes)
        print(result.render_fig5())
        print()
        print(result.render_fig6())
        result.to_csv()
    elif args.command == "fig7":
        algorithms = args.algorithms.split(",") if args.algorithms else None
        result = run_fig7(scale=scale, algorithms=algorithms)
        print(result.render())
        result.to_csv()
    elif args.command == "fig8":
        result = run_fig8(scale=scale, lanes=args.lanes)
        print(result.render())
        result.to_csv()
    elif args.command == "fig9":
        result = run_fig9(scale=scale, lanes=args.lanes)
        print(result.render())
        result.to_csv()
    if args.cache_stats:
        _print_cache_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
