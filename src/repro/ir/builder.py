"""IRBuilder: ergonomic construction of repro-IR, mirroring llvmlite/LLVM.

Every emit method appends to the current insertion block and returns the
new instruction, so program construction reads like straight-line code:

    b = IRBuilder(block)
    total = b.add(b.load(ptr), b.const(1), name="total")
    b.store(total, ptr)
    b.ret(total)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from . import types as ty
from .instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    InvokeInst,
    LoadInst,
    PhiNode,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .module import BasicBlock, Function
from .values import ConstantFloat, ConstantInt, Value

__all__ = ["IRBuilder"]


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _insert(self, inst):
        assert self.block is not None, "builder has no insertion block"
        return self.block.append(inst)

    # -- constants -----------------------------------------------------------
    @staticmethod
    def const(value: int, type_: ty.IntType = ty.i32) -> ConstantInt:
        return ConstantInt(type_, value)

    @staticmethod
    def fconst(value: float) -> ConstantFloat:
        return ConstantFloat(ty.f64, value)

    # -- integer arithmetic ----------------------------------------------------
    def _binop(self, opcode: str, lhs: Value, rhs: Value, name: str) -> BinaryOperator:
        return self._insert(BinaryOperator(opcode, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self._binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self._binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self._binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self._binop("sdiv", lhs, rhs, name)

    def udiv(self, lhs, rhs, name=""):
        return self._binop("udiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self._binop("srem", lhs, rhs, name)

    def urem(self, lhs, rhs, name=""):
        return self._binop("urem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self._binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self._binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self._binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self._binop("shl", lhs, rhs, name)

    def lshr(self, lhs, rhs, name=""):
        return self._binop("lshr", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=""):
        return self._binop("ashr", lhs, rhs, name)

    # -- float arithmetic --------------------------------------------------------
    def fadd(self, lhs, rhs, name=""):
        return self._binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self._binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self._binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self._binop("fdiv", lhs, rhs, name)

    def fneg(self, value, name=""):
        return self._insert(FNegInst(value, name))

    # -- comparisons / select ------------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmpInst:
        return self._insert(ICmpInst(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmpInst:
        return self._insert(FCmpInst(predicate, lhs, rhs, name))

    def select(self, cond: Value, true_value: Value, false_value: Value, name: str = "") -> SelectInst:
        return self._insert(SelectInst(cond, true_value, false_value, name))

    # -- memory ------------------------------------------------------------------
    def alloca(self, allocated_type: ty.Type, name: str = "") -> AllocaInst:
        return self._insert(AllocaInst(allocated_type, name))

    def load(self, pointer: Value, name: str = "", volatile: bool = False) -> LoadInst:
        return self._insert(LoadInst(pointer, name, volatile))

    def store(self, value: Value, pointer: Value, volatile: bool = False) -> StoreInst:
        return self._insert(StoreInst(value, pointer, volatile))

    def gep(self, pointer: Value, indices: Sequence[Union[Value, int]], name: str = "") -> GEPInst:
        resolved = [self.const(i) if isinstance(i, int) else i for i in indices]
        return self._insert(GEPInst(pointer, resolved, name))

    # -- calls ----------------------------------------------------------------------
    def call(self, callee, args: Sequence[Value], return_type: Optional[ty.Type] = None,
             name: str = "") -> CallInst:
        if return_type is None:
            if isinstance(callee, Function):
                return_type = callee.return_type
            else:
                raise TypeError("external calls need an explicit return_type")
        return self._insert(CallInst(callee, list(args), return_type, name))

    def invoke(self, callee, args: Sequence[Value], return_type: ty.Type,
               normal_dest: BasicBlock, unwind_dest: BasicBlock, name: str = "") -> InvokeInst:
        return self._insert(InvokeInst(callee, list(args), return_type, normal_dest, unwind_dest, name))

    # -- casts ---------------------------------------------------------------------
    def trunc(self, value: Value, dest: ty.Type, name: str = "") -> CastInst:
        return self._insert(CastInst("trunc", value, dest, name))

    def zext(self, value: Value, dest: ty.Type, name: str = "") -> CastInst:
        return self._insert(CastInst("zext", value, dest, name))

    def sext(self, value: Value, dest: ty.Type, name: str = "") -> CastInst:
        return self._insert(CastInst("sext", value, dest, name))

    def bitcast(self, value: Value, dest: ty.Type, name: str = "") -> CastInst:
        return self._insert(CastInst("bitcast", value, dest, name))

    def sitofp(self, value: Value, dest: ty.Type = ty.f64, name: str = "") -> CastInst:
        return self._insert(CastInst("sitofp", value, dest, name))

    def fptosi(self, value: Value, dest: ty.Type = ty.i32, name: str = "") -> CastInst:
        return self._insert(CastInst("fptosi", value, dest, name))

    # -- control flow ------------------------------------------------------------------
    def phi(self, type_: ty.Type, name: str = "") -> PhiNode:
        node = PhiNode(type_, name)
        assert self.block is not None
        self.block.insert_at_front(node)
        return node

    def br(self, target: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(target))

    def cbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(cond, if_true, if_false))

    def switch(self, value: Value, default: BasicBlock) -> SwitchInst:
        return self._insert(SwitchInst(value, default))

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self._insert(ReturnInst(value))

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst())
