"""Single source of truth for scalar operation semantics.

Both the IR interpreter and every constant-folding pass (instcombine,
SCCP, GVN, ...) evaluate operations through these functions, so a folded
constant can never disagree with what execution would have produced —
the property the differential-testing harness relies on.

Deliberate total-function choices (documented for reviewers):

* ``sdiv``/``udiv``/``srem``/``urem`` by zero evaluate to 0 instead of
  trapping. The random program generator cannot always prove divisors
  non-zero, and a total semantics keeps every generated program a valid
  HLS input (hardware dividers return *something*; we pick 0
  deterministically).
* Shift amounts are taken modulo the bit width (as hardware shifters do)
  instead of producing poison.
* Signed division truncates toward zero (C semantics), not Python floor.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from . import types as ty

__all__ = ["eval_int_binop", "eval_float_binop", "eval_icmp", "eval_fcmp", "eval_cast"]

Number = Union[int, float]


def _to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def eval_int_binop(opcode: str, type_: ty.IntType, a: int, b: int) -> int:
    bits = type_.bits
    if opcode == "add":
        r = a + b
    elif opcode == "sub":
        r = a - b
    elif opcode == "mul":
        r = a * b
    elif opcode == "sdiv":
        if b == 0:
            r = 0
        else:
            q = abs(a) // abs(b)
            r = -q if (a < 0) != (b < 0) else q
    elif opcode == "udiv":
        ua, ub = _to_unsigned(a, bits), _to_unsigned(b, bits)
        r = 0 if ub == 0 else ua // ub
    elif opcode == "srem":
        if b == 0:
            r = 0
        else:
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            r = a - b * q
    elif opcode == "urem":
        ua, ub = _to_unsigned(a, bits), _to_unsigned(b, bits)
        r = 0 if ub == 0 else ua % ub
    elif opcode == "and":
        r = _to_unsigned(a, bits) & _to_unsigned(b, bits)
    elif opcode == "or":
        r = _to_unsigned(a, bits) | _to_unsigned(b, bits)
    elif opcode == "xor":
        r = _to_unsigned(a, bits) ^ _to_unsigned(b, bits)
    elif opcode == "shl":
        r = _to_unsigned(a, bits) << (_to_unsigned(b, bits) % bits)
    elif opcode == "lshr":
        r = _to_unsigned(a, bits) >> (_to_unsigned(b, bits) % bits)
    elif opcode == "ashr":
        r = a >> (_to_unsigned(b, bits) % bits)
    else:
        raise ValueError(f"unknown integer binop: {opcode}")
    return type_.wrap(r)


def eval_float_binop(opcode: str, a: float, b: float) -> float:
    if opcode == "fadd":
        return a + b
    if opcode == "fsub":
        return a - b
    if opcode == "fmul":
        return a * b
    if opcode == "fdiv":
        if b == 0.0:
            # IEEE semantics: inf/nan; keep them (floats never feed
            # branches in generated programs without an fcmp first).
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        return a / b
    raise ValueError(f"unknown float binop: {opcode}")


def eval_icmp(pred: str, type_: ty.IntType, a: int, b: int) -> bool:
    bits = type_.bits
    if pred == "eq":
        return a == b
    if pred == "ne":
        return a != b
    if pred == "slt":
        return a < b
    if pred == "sle":
        return a <= b
    if pred == "sgt":
        return a > b
    if pred == "sge":
        return a >= b
    ua, ub = _to_unsigned(a, bits), _to_unsigned(b, bits)
    if pred == "ult":
        return ua < ub
    if pred == "ule":
        return ua <= ub
    if pred == "ugt":
        return ua > ub
    if pred == "uge":
        return ua >= ub
    raise ValueError(f"unknown icmp predicate: {pred}")


def eval_fcmp(pred: str, a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False  # all our predicates are "ordered"
    if pred == "oeq":
        return a == b
    if pred == "one":
        return a != b
    if pred == "olt":
        return a < b
    if pred == "ole":
        return a <= b
    if pred == "ogt":
        return a > b
    if pred == "oge":
        return a >= b
    raise ValueError(f"unknown fcmp predicate: {pred}")


def eval_cast(opcode: str, src_type: ty.Type, dest_type: ty.Type, value: Number) -> Number:
    if opcode == "trunc":
        assert isinstance(dest_type, ty.IntType)
        return dest_type.wrap(int(value))
    if opcode == "zext":
        assert isinstance(src_type, ty.IntType) and isinstance(dest_type, ty.IntType)
        return dest_type.wrap(_to_unsigned(int(value), src_type.bits))
    if opcode == "sext":
        assert isinstance(dest_type, ty.IntType)
        return dest_type.wrap(int(value))
    if opcode == "bitcast":
        return value
    if opcode == "sitofp":
        return float(int(value))
    if opcode == "fptosi":
        assert isinstance(dest_type, ty.IntType)
        if math.isnan(value) or math.isinf(value):
            return 0
        return dest_type.wrap(int(value))
    raise ValueError(f"unknown cast opcode: {opcode}")
