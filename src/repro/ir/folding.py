"""Single source of truth for scalar operation semantics.

Both the IR interpreter and every constant-folding pass (instcombine,
SCCP, GVN, ...) evaluate operations through these functions, so a folded
constant can never disagree with what execution would have produced —
the property the differential-testing harness relies on.

Deliberate total-function choices (documented for reviewers):

* ``sdiv``/``udiv``/``srem``/``urem`` by zero evaluate to 0 instead of
  trapping. The random program generator cannot always prove divisors
  non-zero, and a total semantics keeps every generated program a valid
  HLS input (hardware dividers return *something*; we pick 0
  deterministically).
* Shift amounts are taken modulo the bit width (as hardware shifters do)
  instead of producing poison.
* Signed division truncates toward zero (C semantics), not Python floor.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from . import types as ty

__all__ = ["eval_int_binop", "eval_float_binop", "eval_icmp", "eval_fcmp", "eval_cast",
           "int_binop_fn", "float_binop_fn", "icmp_fn", "fcmp_fn", "cast_fn"]

Number = Union[int, float]


def _to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def eval_int_binop(opcode: str, type_: ty.IntType, a: int, b: int) -> int:
    bits = type_.bits
    if opcode == "add":
        r = a + b
    elif opcode == "sub":
        r = a - b
    elif opcode == "mul":
        r = a * b
    elif opcode == "sdiv":
        if b == 0:
            r = 0
        else:
            q = abs(a) // abs(b)
            r = -q if (a < 0) != (b < 0) else q
    elif opcode == "udiv":
        ua, ub = _to_unsigned(a, bits), _to_unsigned(b, bits)
        r = 0 if ub == 0 else ua // ub
    elif opcode == "srem":
        if b == 0:
            r = 0
        else:
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            r = a - b * q
    elif opcode == "urem":
        ua, ub = _to_unsigned(a, bits), _to_unsigned(b, bits)
        r = 0 if ub == 0 else ua % ub
    elif opcode == "and":
        r = _to_unsigned(a, bits) & _to_unsigned(b, bits)
    elif opcode == "or":
        r = _to_unsigned(a, bits) | _to_unsigned(b, bits)
    elif opcode == "xor":
        r = _to_unsigned(a, bits) ^ _to_unsigned(b, bits)
    elif opcode == "shl":
        r = _to_unsigned(a, bits) << (_to_unsigned(b, bits) % bits)
    elif opcode == "lshr":
        r = _to_unsigned(a, bits) >> (_to_unsigned(b, bits) % bits)
    elif opcode == "ashr":
        r = a >> (_to_unsigned(b, bits) % bits)
    else:
        raise ValueError(f"unknown integer binop: {opcode}")
    return type_.wrap(r)


def eval_float_binop(opcode: str, a: float, b: float) -> float:
    if opcode == "fadd":
        return a + b
    if opcode == "fsub":
        return a - b
    if opcode == "fmul":
        return a * b
    if opcode == "fdiv":
        if b == 0.0:
            # IEEE semantics: inf/nan; keep them (floats never feed
            # branches in generated programs without an fcmp first).
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        return a / b
    raise ValueError(f"unknown float binop: {opcode}")


def eval_icmp(pred: str, type_: ty.IntType, a: int, b: int) -> bool:
    bits = type_.bits
    if pred == "eq":
        return a == b
    if pred == "ne":
        return a != b
    if pred == "slt":
        return a < b
    if pred == "sle":
        return a <= b
    if pred == "sgt":
        return a > b
    if pred == "sge":
        return a >= b
    ua, ub = _to_unsigned(a, bits), _to_unsigned(b, bits)
    if pred == "ult":
        return ua < ub
    if pred == "ule":
        return ua <= ub
    if pred == "ugt":
        return ua > ub
    if pred == "uge":
        return ua >= ub
    raise ValueError(f"unknown icmp predicate: {pred}")


def eval_fcmp(pred: str, a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False  # all our predicates are "ordered"
    if pred == "oeq":
        return a == b
    if pred == "one":
        return a != b
    if pred == "olt":
        return a < b
    if pred == "ole":
        return a <= b
    if pred == "ogt":
        return a > b
    if pred == "oge":
        return a >= b
    raise ValueError(f"unknown fcmp predicate: {pred}")


def eval_cast(opcode: str, src_type: ty.Type, dest_type: ty.Type, value: Number) -> Number:
    if opcode == "trunc":
        assert isinstance(dest_type, ty.IntType)
        return dest_type.wrap(int(value))
    if opcode == "zext":
        assert isinstance(src_type, ty.IntType) and isinstance(dest_type, ty.IntType)
        return dest_type.wrap(_to_unsigned(int(value), src_type.bits))
    if opcode == "sext":
        assert isinstance(dest_type, ty.IntType)
        return dest_type.wrap(int(value))
    if opcode == "bitcast":
        return value
    if opcode == "sitofp":
        return float(int(value))
    if opcode == "fptosi":
        assert isinstance(dest_type, ty.IntType)
        if math.isnan(value) or math.isinf(value):
            return 0
        return dest_type.wrap(int(value))
    raise ValueError(f"unknown cast opcode: {opcode}")


# -- specialized closures -----------------------------------------------------
# The compiled-kernel interpreter (repro.interp.kernels) dispatches through
# pre-bound per-instruction closures instead of re-selecting the opcode path
# on every executed step. These factories are the closure-producing view of
# the eval_* functions above and MUST agree with them bit for bit (the
# parity property is pinned by tests/test_kernels.py); the scalar coercions
# (`int()`/`float()`) that the reference interpreter applies at its call
# sites are folded into the closures so callers can pass raw runtime values.

def int_binop_fn(opcode: str, type_: ty.IntType):
    """A closure ``f(a, b)`` equal to ``eval_int_binop(opcode, type_, int(a), int(b))``.

    The two's-complement wrap (``IntType.wrap``) is inlined into each
    closure — ``v &= mask; v -= size if the sign bit is set`` — so the hot
    path performs no attribute lookups or extra calls. ``half`` is 0 for
    1-bit types, where wrap degenerates to ``v & 1``."""
    bits = type_.bits
    mask = (1 << bits) - 1
    half = (1 << (bits - 1)) if bits > 1 else 0
    size = 1 << bits
    if opcode == "add":
        return lambda a, b: (v - size if (v := (int(a) + int(b)) & mask) & half else v)
    if opcode == "sub":
        return lambda a, b: (v - size if (v := (int(a) - int(b)) & mask) & half else v)
    if opcode == "mul":
        return lambda a, b: (v - size if (v := (int(a) * int(b)) & mask) & half else v)
    if opcode == "sdiv":
        def sdiv(a, b):
            a, b = int(a), int(b)
            if b == 0:
                return 0
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            q &= mask
            return q - size if q & half else q
        return sdiv
    if opcode == "udiv":
        def udiv(a, b):
            ub = int(b) & mask
            if ub == 0:
                return 0
            v = (int(a) & mask) // ub
            return v - size if v & half else v
        return udiv
    if opcode == "srem":
        def srem(a, b):
            a, b = int(a), int(b)
            if b == 0:
                return 0
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            v = (a - b * q) & mask
            return v - size if v & half else v
        return srem
    if opcode == "urem":
        def urem(a, b):
            ub = int(b) & mask
            if ub == 0:
                return 0
            v = (int(a) & mask) % ub
            return v - size if v & half else v
        return urem
    if opcode == "and":
        return lambda a, b: (v - size if (v := int(a) & int(b) & mask) & half else v)
    if opcode == "or":
        return lambda a, b: (v - size if (v := (int(a) | int(b)) & mask) & half else v)
    if opcode == "xor":
        return lambda a, b: (v - size if (v := (int(a) ^ int(b)) & mask) & half else v)
    if opcode == "shl":
        return lambda a, b: (v - size
                             if (v := ((int(a) & mask) << ((int(b) & mask) % bits)) & mask) & half
                             else v)
    if opcode == "lshr":
        return lambda a, b: (v - size
                             if (v := (int(a) & mask) >> ((int(b) & mask) % bits)) & half
                             else v)
    if opcode == "ashr":
        return lambda a, b: (v - size
                             if (v := (int(a) >> ((int(b) & mask) % bits)) & mask) & half
                             else v)
    raise ValueError(f"unknown integer binop: {opcode}")


def float_binop_fn(opcode: str):
    """A closure ``f(a, b)`` equal to ``eval_float_binop(opcode, float(a), float(b))``."""
    if opcode == "fadd":
        return lambda a, b: float(a) + float(b)
    if opcode == "fsub":
        return lambda a, b: float(a) - float(b)
    if opcode == "fmul":
        return lambda a, b: float(a) * float(b)
    if opcode == "fdiv":
        def fdiv(a, b):
            a, b = float(a), float(b)
            if b == 0.0:
                return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
            return a / b
        return fdiv
    raise ValueError(f"unknown float binop: {opcode}")


def icmp_fn(pred: str, type_: ty.IntType):
    """A closure ``f(a, b)`` equal to ``eval_icmp(pred, type_, int(a), int(b))``."""
    mask = (1 << type_.bits) - 1
    if pred == "eq":
        return lambda a, b: int(a) == int(b)
    if pred == "ne":
        return lambda a, b: int(a) != int(b)
    if pred == "slt":
        return lambda a, b: int(a) < int(b)
    if pred == "sle":
        return lambda a, b: int(a) <= int(b)
    if pred == "sgt":
        return lambda a, b: int(a) > int(b)
    if pred == "sge":
        return lambda a, b: int(a) >= int(b)
    if pred == "ult":
        return lambda a, b: (int(a) & mask) < (int(b) & mask)
    if pred == "ule":
        return lambda a, b: (int(a) & mask) <= (int(b) & mask)
    if pred == "ugt":
        return lambda a, b: (int(a) & mask) > (int(b) & mask)
    if pred == "uge":
        return lambda a, b: (int(a) & mask) >= (int(b) & mask)
    raise ValueError(f"unknown icmp predicate: {pred}")


def fcmp_fn(pred: str):
    """A closure ``f(a, b)`` equal to ``eval_fcmp(pred, float(a), float(b))``."""
    if pred not in ("oeq", "one", "olt", "ole", "ogt", "oge"):
        raise ValueError(f"unknown fcmp predicate: {pred}")
    return lambda a, b, _p=pred: eval_fcmp(_p, float(a), float(b))


def cast_fn(opcode: str, src_type: ty.Type, dest_type: ty.Type):
    """A closure ``f(v)`` equal to ``eval_cast(opcode, src_type, dest_type, v)``
    for non-pointer runtime values (the pointer cases stay with the caller)."""
    if opcode == "bitcast":
        return lambda v: v
    if opcode == "sitofp":
        return lambda v: float(int(v))
    bits = dest_type.bits
    mask = (1 << bits) - 1
    half = (1 << (bits - 1)) if bits > 1 else 0
    size = 1 << bits
    if opcode == "trunc" or opcode == "sext":
        return lambda v: (w - size if (w := int(v) & mask) & half else w)
    if opcode == "zext":
        src_mask = (1 << src_type.bits) - 1
        return lambda v: (w - size if (w := int(v) & src_mask & mask) & half else w)
    if opcode == "fptosi":
        def fptosi(v):
            if math.isnan(v) or math.isinf(v):
                return 0
            w = int(v) & mask
            return w - size if w & half else w
        return fptosi
    raise ValueError(f"unknown cast opcode: {opcode}")
