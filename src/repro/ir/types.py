"""Type system for the repro IR.

The IR is a small, typed, LLVM-like intermediate representation. Types are
immutable and interned by structural key, so identity comparison (`is`) and
equality (`==`) agree for any two types built through the public helpers
(:data:`i1`, :data:`i32`, :func:`IntType`, :func:`PointerType`, ...).

Sizes are measured in abstract *slots*: every scalar (integer of any width,
float, pointer) occupies exactly one slot. This matches how the HLS memory
model allocates BRAM words and keeps GEP arithmetic simple without
sacrificing any behaviour the paper's feature set or passes depend on.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "Type",
    "VoidType",
    "LabelType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "FunctionType",
    "void",
    "label",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "f64",
]

_INTERN: Dict[tuple, "Type"] = {}


def _intern(cls, key: tuple, *args, **kwargs) -> "Type":
    full_key = (cls.__name__,) + key
    existing = _INTERN.get(full_key)
    if existing is not None:
        return existing
    obj = object.__new__(cls)
    obj._init(*args, **kwargs)  # type: ignore[attr-defined]
    _INTERN[full_key] = obj
    return obj


class Type:
    """Base class for all IR types."""

    __slots__ = ()

    # -- classification helpers ------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_scalar(self) -> bool:
        """True for types that fit in a single memory slot."""
        return self.is_int or self.is_float or self.is_pointer

    @property
    def size_slots(self) -> int:
        """Size of a value of this type in abstract memory slots."""
        raise TypeError(f"type {self} has no in-memory size")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self}>"


class VoidType(Type):
    __slots__ = ()

    def _init(self) -> None:
        pass

    def __str__(self) -> str:
        return "void"


class LabelType(Type):
    """The type of basic-block labels (only used for printing)."""

    __slots__ = ()

    def _init(self) -> None:
        pass

    def __str__(self) -> str:
        return "label"


class IntType(Type):
    """An integer type of a fixed bit width with two's-complement semantics."""

    __slots__ = ("bits",)

    def _init(self, bits: int) -> None:
        if bits < 1 or bits > 128:
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def size_slots(self) -> int:
        return 1

    @property
    def mask(self) -> int:
        """Bit mask selecting the low ``bits`` bits."""
        return (1 << self.bits) - 1

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int to this width (signed, two's complement)."""
        value &= self.mask
        if self.bits > 1 and value >> (self.bits - 1):
            value -= 1 << self.bits
        return value


class FloatType(Type):
    """A 64-bit IEEE double (the only float the substrate needs)."""

    __slots__ = ("bits",)

    def _init(self, bits: int = 64) -> None:
        self.bits = bits

    def __str__(self) -> str:
        return "double" if self.bits == 64 else f"f{self.bits}"

    @property
    def size_slots(self) -> int:
        return 1


class PointerType(Type):
    __slots__ = ("pointee",)

    def _init(self, pointee: Type) -> None:
        self.pointee = pointee

    def __str__(self) -> str:
        return f"{self.pointee}*"

    @property
    def size_slots(self) -> int:
        return 1


class ArrayType(Type):
    __slots__ = ("element", "count")

    def _init(self, element: Type, count: int) -> None:
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    @property
    def size_slots(self) -> int:
        return self.count * self.element.size_slots


class FunctionType(Type):
    __slots__ = ("return_type", "param_types")

    def _init(self, return_type: Type, param_types: Tuple[Type, ...]) -> None:
        self.return_type = return_type
        self.param_types = tuple(param_types)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type} ({params})"


# -- public constructors --------------------------------------------------

def int_type(bits: int) -> IntType:
    return _intern(IntType, (bits,), bits)  # type: ignore[return-value]


def float_type(bits: int = 64) -> FloatType:
    return _intern(FloatType, (bits,), bits)  # type: ignore[return-value]


def pointer_type(pointee: Type) -> PointerType:
    return _intern(PointerType, (id(pointee),), pointee)  # type: ignore[return-value]


def array_type(element: Type, count: int) -> ArrayType:
    return _intern(ArrayType, (id(element), count), element, count)  # type: ignore[return-value]


def function_type(return_type: Type, param_types) -> FunctionType:
    params = tuple(param_types)
    key = (id(return_type),) + tuple(id(p) for p in params)
    return _intern(FunctionType, key, return_type, params)  # type: ignore[return-value]


void: VoidType = _intern(VoidType, ())  # type: ignore[assignment]
label: LabelType = _intern(LabelType, ())  # type: ignore[assignment]
i1 = int_type(1)
i8 = int_type(8)
i16 = int_type(16)
i32 = int_type(32)
i64 = int_type(64)
f64 = float_type(64)

# Convenience aliases used across the code base.
IntType.get = staticmethod(int_type)  # type: ignore[attr-defined]
PointerType.get = staticmethod(pointer_type)  # type: ignore[attr-defined]
ArrayType.get = staticmethod(array_type)  # type: ignore[attr-defined]
FunctionType.get = staticmethod(function_type)  # type: ignore[attr-defined]
