"""Textual printer producing an LLVM-flavoured rendering of the IR.

The output exists for debugging, goldens in tests, and the RTL emitter's
comments — there is no parser; programs are built through the IRBuilder.
"""

from __future__ import annotations

from typing import List

from .instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    Instruction,
    InvokeInst,
    LoadInst,
    PhiNode,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .values import ConstantFloat, ConstantInt, UndefValue, Value, GlobalVariable

__all__ = ["instruction_to_str", "function_to_str", "module_to_str"]


def _ref(v: Value) -> str:
    """Render a value reference (operand position)."""
    if isinstance(v, ConstantInt):
        return str(v.value)
    if isinstance(v, ConstantFloat):
        return repr(v.value)
    if isinstance(v, UndefValue):
        return "undef"
    if isinstance(v, GlobalVariable):
        return f"@{v.name}"
    from .module import BasicBlock, Function

    if isinstance(v, Function):
        return f"@{v.name}"
    if isinstance(v, BasicBlock):
        return f"%{v.name}"
    return f"%{v.name}"


def _tref(v: Value) -> str:
    return f"{v.type} {_ref(v)}"


def instruction_to_str(inst: Instruction) -> str:
    if isinstance(inst, BinaryOperator):
        return f"%{inst.name} = {inst.opcode} {_tref(inst.lhs)}, {_ref(inst.rhs)}"
    if isinstance(inst, FNegInst):
        return f"%{inst.name} = fneg {_tref(inst.operand)}"
    if isinstance(inst, ICmpInst):
        return f"%{inst.name} = icmp {inst.predicate} {_tref(inst.lhs)}, {_ref(inst.rhs)}"
    if isinstance(inst, FCmpInst):
        return f"%{inst.name} = fcmp {inst.predicate} {_tref(inst.lhs)}, {_ref(inst.rhs)}"
    if isinstance(inst, SelectInst):
        return (
            f"%{inst.name} = select {_tref(inst.condition)}, "
            f"{_tref(inst.true_value)}, {_tref(inst.false_value)}"
        )
    if isinstance(inst, AllocaInst):
        return f"%{inst.name} = alloca {inst.allocated_type}"
    if isinstance(inst, LoadInst):
        vol = "volatile " if inst.is_volatile else ""
        return f"%{inst.name} = load {vol}{inst.type}, {_tref(inst.pointer)}"
    if isinstance(inst, StoreInst):
        vol = "volatile " if inst.is_volatile else ""
        return f"store {vol}{_tref(inst.value)}, {_tref(inst.pointer)}"
    if isinstance(inst, GEPInst):
        idx = ", ".join(_tref(i) for i in inst.indices)
        return f"%{inst.name} = getelementptr {inst.pointer.type.pointee}, {_tref(inst.pointer)}, {idx}"
    if isinstance(inst, CallInst):
        args = ", ".join(_tref(a) for a in inst.args)
        callee = inst.callee_name
        prefix = "" if inst.type.is_void else f"%{inst.name} = "
        tail = "tail " if inst.tail else ""
        return f"{prefix}{tail}call {inst.type} @{callee}({args})"
    if isinstance(inst, InvokeInst):
        args = ", ".join(_tref(a) for a in inst.args)
        prefix = "" if inst.type.is_void else f"%{inst.name} = "
        return (
            f"{prefix}invoke {inst.type} @{inst.callee_name}({args}) "
            f"to label %{inst.normal_dest.name} unwind label %{inst.unwind_dest.name}"
        )
    if isinstance(inst, CastInst):
        return f"%{inst.name} = {inst.opcode} {_tref(inst.operand)} to {inst.type}"
    if isinstance(inst, PhiNode):
        pairs = ", ".join(f"[ {_ref(v)}, %{bb.name} ]" for v, bb in inst.incoming)
        return f"%{inst.name} = phi {inst.type} {pairs}"
    if isinstance(inst, ReturnInst):
        if inst.return_value is None:
            return "ret void"
        return f"ret {_tref(inst.return_value)}"
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return (
                f"br {_tref(inst.condition)}, label %{inst.true_target.name}, "
                f"label %{inst.false_target.name}"
            )
        return f"br label %{inst.true_target.name}"
    if isinstance(inst, SwitchInst):
        cases = " ".join(f"{c.type} {c.value}, label %{bb.name}" for c, bb in inst.cases)
        return f"switch {_tref(inst.condition)}, label %{inst.default.name} [ {cases} ]"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    return f"%{inst.name} = {inst.opcode} " + ", ".join(_ref(o) for o in inst.operands)


def function_to_str(func) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    attrs = (" " + " ".join(sorted(func.attributes))) if func.attributes else ""
    lines: List[str] = []
    if func.is_declaration:
        return f"declare {func.return_type} @{func.name}({params}){attrs}"
    lines.append(f"define {func.return_type} @{func.name}({params}){attrs} {{")
    for bb in func.blocks:
        preds = ", ".join(p.name for p in bb.predecessors())
        header = f"{bb.name}:"
        if preds:
            header += f"  ; preds = {preds}"
        lines.append(header)
        for inst in bb.instructions:
            lines.append(f"  {instruction_to_str(inst)}")
    lines.append("}")
    return "\n".join(lines)


def module_to_str(module) -> str:
    lines: List[str] = [f"; ModuleID = '{module.source_name}'"]
    for gv in module.globals.values():
        const = "constant" if gv.is_constant else "global"
        lines.append(f"@{gv.name} = {gv.linkage} {const} {gv.value_type}")
    if module.globals:
        lines.append("")
    for func in module.functions.values():
        lines.append(function_to_str(func))
        lines.append("")
    return "\n".join(lines)
