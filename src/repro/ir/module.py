"""Containers: basic blocks, functions, and modules."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from . import types as ty
from .instructions import BranchInst, Instruction, PhiNode
from .values import Argument, GlobalVariable, Value, fresh_name

__all__ = ["BasicBlock", "Function", "Module"]


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in one terminator."""

    __slots__ = ("parent", "instructions")

    def __init__(self, name: str = "", parent: Optional["Function"] = None) -> None:
        super().__init__(ty.label, name or fresh_name("bb"))
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure ----------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def append(self, inst: Instruction) -> Instruction:
        inst.move_to_end(self)
        return inst

    def insert_at_front(self, inst: Instruction) -> Instruction:
        inst.remove_from_parent()
        self.instructions.insert(0, inst)
        inst.parent = self
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        term = self.terminator
        if term is None:
            return self.append(inst)
        inst.insert_before(term)
        return inst

    def phis(self) -> List[PhiNode]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiNode):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi(self) -> Optional[Instruction]:
        for inst in self.instructions:
            if not isinstance(inst, PhiNode):
                return inst
        return None

    # -- CFG ------------------------------------------------------------------
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> List["BasicBlock"]:
        """Predecessors in function order (computed fresh; blocks mutate)."""
        assert self.parent is not None, "detached block has no predecessors"
        return [bb for bb in self.parent.blocks if self in bb.successors()]

    def remove_from_parent(self) -> None:
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None

    def drop_all_instructions(self) -> None:
        """Delete every instruction, releasing their operand uses."""
        for inst in self.instructions:
            inst.drop_all_references()
            inst.parent = None
        self.instructions = []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(list(self.instructions))

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        return self.name


class Function(Value):
    """A function: ordered blocks, arguments, and LLVM-style attributes.

    ``attributes`` is a mutable set of strings; the ones with semantic
    meaning to the toolchain are ``readonly``/``readnone`` (used by CSE,
    LICM and the scheduler), ``noinline``/``alwaysinline`` (inliner), and
    ``norecurse`` (tail-call elimination). ``metadata`` carries debug-info
    style annotations that ``-strip`` and ``-strip-nondebug`` remove.
    """

    __slots__ = ("ftype", "args", "blocks", "attributes", "linkage", "parent", "metadata")

    def __init__(self, name: str, ftype: ty.FunctionType, arg_names: Optional[Sequence[str]] = None,
                 linkage: str = "internal") -> None:
        super().__init__(ftype, name)
        self.ftype = ftype
        names = list(arg_names or [])
        while len(names) < len(ftype.param_types):
            names.append(f"arg{len(names)}")
        self.args: List[Argument] = [
            Argument(pt, names[i], self, i) for i, pt in enumerate(ftype.param_types)
        ]
        self.blocks: List[BasicBlock] = []
        self.attributes: Set[str] = set()
        self.linkage = linkage
        self.parent: Optional["Module"] = None
        self.metadata: Dict[str, object] = {}

    @property
    def return_type(self) -> ty.Type:
        return self.ftype.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        assert self.blocks, f"function {self.name} has no body"
        return self.blocks[0]

    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        bb = BasicBlock(name, self)
        if after is None:
            self.blocks.append(bb)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, bb)
        return bb

    def adopt_block(self, bb: BasicBlock, after: Optional[BasicBlock] = None) -> BasicBlock:
        bb.parent = self
        if after is None:
            self.blocks.append(bb)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, bb)
        return bb

    def instructions(self) -> Iterator[Instruction]:
        for bb in self.blocks:
            yield from list(bb.instructions)

    def remove_block(self, bb: BasicBlock) -> None:
        """Delete ``bb`` entirely: detach phi edges in successors, drop body."""
        for succ in bb.successors():
            for phi in succ.phis():
                if bb in phi.incoming_blocks:
                    phi.remove_incoming(bb)
        bb.drop_all_instructions()
        bb.remove_from_parent()

    def __str__(self) -> str:
        return f"@{self.name}"

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(list(self.blocks))


class Module(Value):
    """A translation unit: functions + global variables + module metadata.

    ``version`` is a monotonically increasing mutation counter bumped by
    the PassManager after every pass run; module-keyed memos (e.g. the
    profiler's burst-slot cache) use ``(module, version)`` as their key so
    they invalidate automatically when a transform touches the module.
    """

    __slots__ = ("functions", "globals", "metadata", "source_name", "version",
                 "__weakref__")

    def __init__(self, name: str = "module") -> None:
        super().__init__(ty.void, name)
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.metadata: Dict[str, object] = {}
        self.source_name = name
        self.version = 0

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise KeyError(f"duplicate function name: {func.name}")
        self.functions[func.name] = func
        func.parent = self
        return func

    def remove_function(self, func: Function) -> None:
        del self.functions[func.name]
        func.parent = None

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise KeyError(f"duplicate global name: {gv.name}")
        self.globals[gv.name] = gv
        return gv

    def remove_global(self, gv: GlobalVariable) -> None:
        del self.globals[gv.name]

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def instructions(self) -> Iterator[Instruction]:
        for func in list(self.functions.values()):
            yield from func.instructions()

    def instruction_count(self) -> int:
        return sum(1 for _ in self.instructions())

    def __str__(self) -> str:
        from .printer import module_to_str

        return module_to_str(self)
