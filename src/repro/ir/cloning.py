"""Region cloning — the shared machinery behind inlining, loop unrolling,
loop rotation, loop unswitching, partial inlining, and jump threading.

``clone_blocks`` duplicates a set of blocks, remapping operands through a
value map. References to values *outside* the cloned region (and to blocks
outside it) are left pointing at the originals, which is exactly the
behaviour region-duplication passes need.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    Instruction,
    InvokeInst,
    LoadInst,
    PhiNode,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .module import BasicBlock, Function, Module
from .values import GlobalVariable, Value

__all__ = ["clone_instruction", "clone_blocks", "clone_module"]


def _mapped(value: Value, vmap: Dict[Value, Value]) -> Value:
    return vmap.get(value, value)


def clone_instruction(inst: Instruction, vmap: Dict[Value, Value]) -> Instruction:
    """Clone one instruction, remapping operands through ``vmap``.

    Successor blocks and phi incoming blocks are remapped through ``vmap``
    as well (BasicBlock is a Value). Phi *incoming values* are copied as-is
    here and fixed up by :func:`clone_blocks` once all clones exist.
    """
    m = lambda v: _mapped(v, vmap)
    if isinstance(inst, BinaryOperator):
        new: Instruction = BinaryOperator(inst.opcode, m(inst.lhs), m(inst.rhs), inst.name + ".c")
    elif isinstance(inst, FNegInst):
        new = FNegInst(m(inst.operand), inst.name + ".c")
    elif isinstance(inst, ICmpInst):
        new = ICmpInst(inst.predicate, m(inst.lhs), m(inst.rhs), inst.name + ".c")
    elif isinstance(inst, FCmpInst):
        new = FCmpInst(inst.predicate, m(inst.lhs), m(inst.rhs), inst.name + ".c")
    elif isinstance(inst, SelectInst):
        new = SelectInst(m(inst.condition), m(inst.true_value), m(inst.false_value), inst.name + ".c")
    elif isinstance(inst, AllocaInst):
        new = AllocaInst(inst.allocated_type, inst.name + ".c")
    elif isinstance(inst, LoadInst):
        new = LoadInst(m(inst.pointer), inst.name + ".c", inst.is_volatile)
    elif isinstance(inst, StoreInst):
        new = StoreInst(m(inst.value), m(inst.pointer), inst.is_volatile)
    elif isinstance(inst, GEPInst):
        new = GEPInst(m(inst.pointer), [m(i) for i in inst.indices], inst.name + ".c")
    elif isinstance(inst, CallInst):
        new = CallInst(inst.callee, [m(a) for a in inst.args], inst.type, inst.name + ".c")
        new.tail = inst.tail
    elif isinstance(inst, InvokeInst):
        new = InvokeInst(
            inst.callee,
            [m(a) for a in inst.args],
            inst.type,
            _mapped(inst.normal_dest, vmap),  # type: ignore[arg-type]
            _mapped(inst.unwind_dest, vmap),  # type: ignore[arg-type]
            inst.name + ".c",
        )
    elif isinstance(inst, CastInst):
        new = CastInst(inst.opcode, m(inst.operand), inst.type, inst.name + ".c")
    elif isinstance(inst, PhiNode):
        phi = PhiNode(inst.type, inst.name + ".c")
        for value, block in inst.incoming:
            phi.add_incoming(m(value), _mapped(block, vmap))  # type: ignore[arg-type]
        new = phi
    elif isinstance(inst, ReturnInst):
        rv = inst.return_value
        new = ReturnInst(m(rv) if rv is not None else None)
    elif isinstance(inst, BranchInst):
        if inst.is_conditional:
            new = BranchInst(
                m(inst.condition),
                _mapped(inst.true_target, vmap),
                _mapped(inst.false_target, vmap),
            )
        else:
            new = BranchInst(_mapped(inst.true_target, vmap))
    elif isinstance(inst, SwitchInst):
        sw = SwitchInst(m(inst.condition), _mapped(inst.default, vmap))  # type: ignore[arg-type]
        for const, block in inst.cases:
            sw.add_case(const, _mapped(block, vmap))  # type: ignore[arg-type]
        new = sw
    elif isinstance(inst, UnreachableInst):
        new = UnreachableInst()
    else:  # pragma: no cover - exhaustive over the instruction set
        raise TypeError(f"cannot clone instruction of type {type(inst).__name__}")
    new.metadata = dict(inst.metadata)
    return new


def clone_blocks(
    blocks: Sequence[BasicBlock],
    func: Function,
    vmap: Optional[Dict[Value, Value]] = None,
    suffix: str = ".clone",
) -> Tuple[List[BasicBlock], Dict[Value, Value]]:
    """Clone ``blocks`` into ``func`` (appended at the end, in order).

    Returns the new blocks and the final value map (old → new for every
    cloned block and instruction; any caller-seeded entries preserved).
    Operand references to values defined outside the region fall through
    the map unchanged.
    """
    vmap = dict(vmap or {})
    block_set = set(blocks)

    new_blocks: List[BasicBlock] = []
    for bb in blocks:
        nb = BasicBlock(bb.name + suffix, func)
        func.blocks.append(nb)
        vmap[bb] = nb
        new_blocks.append(nb)

    # Two phases: first clone non-phi operand references can forward-refer
    # to instructions later in the region, so clone in program order and
    # patch remaining intra-region references afterwards.
    cloned: List[Tuple[Instruction, Instruction]] = []
    for bb, nb in zip(blocks, new_blocks):
        for inst in bb.instructions:
            ci = clone_instruction(inst, vmap)
            nb.append(ci)
            vmap[inst] = ci
            cloned.append((inst, ci))

    # Fix forward references: operands that pointed at original in-region
    # instructions cloned *after* the user.
    for original, clone in cloned:
        for i, op in enumerate(clone.operands):
            if op in vmap and vmap[op] is not op:
                clone.set_operand(i, vmap[op])
        if isinstance(clone, PhiNode):
            clone.incoming_blocks = [
                vmap.get(b, b) for b in clone.incoming_blocks  # type: ignore[misc]
            ]
        if isinstance(clone, BranchInst):
            for t in clone.successors():
                if t in vmap and vmap[t] is not t:
                    clone.replace_successor(t, vmap[t])  # type: ignore[arg-type]
        if isinstance(clone, SwitchInst) or isinstance(clone, InvokeInst):
            for t in list(clone.successors()):
                if t in vmap and vmap[t] is not t:
                    clone.replace_successor(t, vmap[t])  # type: ignore[arg-type]

    return new_blocks, vmap


def clone_module(module: Module) -> Module:
    """Deep-copy a module (globals, functions, bodies).

    The clone shares no mutable state with the original: globals get fresh
    initializer lists, functions fresh attribute sets and metadata dicts,
    and direct calls are retargeted to the cloned functions.
    """
    new = Module(module.source_name)
    new.metadata = dict(module.metadata)
    vmap: Dict = {}
    for gv in module.globals.values():
        init = gv.initializer
        if isinstance(init, list):
            init = list(init)
        g2 = GlobalVariable(gv.name, gv.value_type, init, gv.is_constant, gv.linkage)
        new.add_global(g2)
        vmap[gv] = g2
    # Create empty function shells first so calls can be remapped.
    for func in module.functions.values():
        f2 = Function(func.name, func.ftype, [a.name for a in func.args], func.linkage)
        f2.attributes = set(func.attributes)
        f2.metadata = dict(func.metadata)
        new.add_function(f2)
        vmap[func] = f2
        for a_old, a_new in zip(func.args, f2.args):
            vmap[a_old] = a_new
    for func in module.functions.values():
        f2 = vmap[func]
        if func.is_declaration:
            continue
        blocks, _ = clone_blocks(func.blocks, f2, dict(vmap), suffix="")
        # Retarget direct calls to the cloned functions.
        for bb in blocks:
            for inst in bb.instructions:
                callee = getattr(inst, "callee", None)
                if callee is not None and not isinstance(callee, str) and callee in vmap:
                    inst.callee = vmap[callee]
    return new
