"""Instruction set of the repro IR.

The opcode vocabulary is the subset of LLVM that the AutoPhase feature
table (Table 2) and pass list (Table 1) are defined over: integer/float
arithmetic, comparisons, select, stack allocation, loads/stores, GEP
address arithmetic, calls/invokes, casts, phis, and the usual block
terminators.

Design notes
------------
* Operand def-use chains are maintained eagerly: constructing an
  instruction registers uses, ``erase_from_parent`` deregisters them, and
  ``Value.replace_all_uses_with`` rewrites them in place.
* Successor blocks (branch/switch/invoke targets, phi incoming blocks) are
  *not* operands — they are tracked through a parallel block-reference API
  (:meth:`Instruction.successors`, :meth:`Instruction.replace_successor`)
  the CFG utilities build on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from . import types as ty
from .values import Constant, ConstantFloat, ConstantInt, UndefValue, Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import BasicBlock, Function

__all__ = [
    "Instruction",
    "BinaryOperator",
    "FNegInst",
    "ICmpInst",
    "FCmpInst",
    "SelectInst",
    "AllocaInst",
    "LoadInst",
    "StoreInst",
    "GEPInst",
    "CallInst",
    "CastInst",
    "PhiNode",
    "ReturnInst",
    "BranchInst",
    "SwitchInst",
    "InvokeInst",
    "UnreachableInst",
    "INT_BINOPS",
    "FLOAT_BINOPS",
    "ICMP_PREDICATES",
    "CAST_OPS",
    "COMMUTATIVE_OPS",
]

INT_BINOPS = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")
CAST_OPS = ("trunc", "zext", "sext", "bitcast", "sitofp", "fptosi")


class Instruction(Value):
    """Base class: a typed value produced by an operation inside a block."""

    __slots__ = ("opcode", "_operands", "parent", "metadata")

    def __init__(self, opcode: str, type_: ty.Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None
        self.metadata: Dict[str, object] = {}
        self._operands: List[Value] = []
        for op in operands:
            self._append_operand(op)

    # -- operand management ------------------------------------------------
    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand must be a Value, got {value!r}")
        self._operands.append(value)
        value._add_use(self)

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        old._remove_use(self)
        self._operands[index] = value
        value._add_use(self)

    def _replace_operand_value(self, old: Value, new: Value) -> None:
        """Called by ``Value.replace_all_uses_with``."""
        for i, op in enumerate(self._operands):
            if op is old:
                self.set_operand(i, new)

    def drop_all_references(self) -> None:
        """Release all operand uses (used when deleting whole regions)."""
        for op in self._operands:
            op._remove_use(self)
        self._operands = []

    # -- block placement -----------------------------------------------------
    def erase_from_parent(self) -> None:
        """Unlink from the parent block and release operand uses.

        The value must be unused; replace uses first (RAUW) or this raises,
        which catches pass bugs early.
        """
        if self.is_used:
            users = ", ".join(u.opcode for u in self.users())
            raise RuntimeError(f"erasing {self.name} ({self.opcode}) which is still used by: {users}")
        self.remove_from_parent()
        self.drop_all_references()

    def remove_from_parent(self) -> None:
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None

    def insert_before(self, other: "Instruction") -> None:
        block = other.parent
        assert block is not None
        self.remove_from_parent()
        block.instructions.insert(block.instructions.index(other), self)
        self.parent = block

    def insert_after(self, other: "Instruction") -> None:
        block = other.parent
        assert block is not None
        self.remove_from_parent()
        block.instructions.insert(block.instructions.index(other) + 1, self)
        self.parent = block

    def move_to_end(self, block: "BasicBlock") -> None:
        self.remove_from_parent()
        block.instructions.append(self)
        self.parent = block

    # -- classification -----------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (ReturnInst, BranchInst, SwitchInst, InvokeInst, UnreachableInst))

    @property
    def is_binary_op(self) -> bool:
        return isinstance(self, BinaryOperator)

    @property
    def is_memory_op(self) -> bool:
        return isinstance(self, (LoadInst, StoreInst, AllocaInst))

    @property
    def is_unary_op(self) -> bool:
        return isinstance(self, (CastInst, FNegInst))

    def may_have_side_effects(self) -> bool:
        """Conservative: may write memory, transfer control, or trap."""
        if isinstance(self, (StoreInst, ReturnInst, BranchInst, SwitchInst, UnreachableInst, InvokeInst)):
            return True
        if isinstance(self, CallInst):
            return not self.is_pure()
        return False

    def may_read_memory(self) -> bool:
        if isinstance(self, LoadInst):
            return True
        if isinstance(self, (CallInst, InvokeInst)):
            return not self.is_readnone()
        return False

    def may_write_memory(self) -> bool:
        if isinstance(self, StoreInst):
            return True
        if isinstance(self, (CallInst, InvokeInst)):
            return not self.is_readonly()
        return False

    # -- CFG edges ------------------------------------------------------------
    def successors(self) -> List["BasicBlock"]:
        return []

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        raise TypeError(f"{self.opcode} has no successors")

    def __str__(self) -> str:
        from .printer import instruction_to_str

        return instruction_to_str(self)


class BinaryOperator(Instruction):
    """Integer or floating binary arithmetic/logic (LLVM ``BinaryOperator``)."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in INT_BINOPS and opcode not in FLOAT_BINOPS:
            raise ValueError(f"unknown binary opcode: {opcode}")
        super().__init__(opcode, lhs.type, (lhs, rhs), name)

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPS

    def has_constant_operand(self) -> bool:
        return isinstance(self.lhs, (ConstantInt, ConstantFloat)) or isinstance(
            self.rhs, (ConstantInt, ConstantFloat)
        )


class FNegInst(Instruction):
    """Floating-point negation — the IR's only true unary arithmetic op."""

    __slots__ = ()

    def __init__(self, operand: Value, name: str = "") -> None:
        super().__init__("fneg", operand.type, (operand,), name)

    @property
    def operand(self) -> Value:
        return self._operands[0]


class ICmpInst(Instruction):
    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        super().__init__("icmp", ty.i1, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]

    SWAPPED = {
        "eq": "eq", "ne": "ne",
        "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
        "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
    }
    INVERSE = {
        "eq": "ne", "ne": "eq",
        "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
        "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
    }


class FCmpInst(Instruction):
    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate: {predicate}")
        super().__init__("fcmp", ty.i1, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]


class SelectInst(Instruction):
    __slots__ = ()

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = "") -> None:
        super().__init__("select", true_value.type, (cond, true_value, false_value), name)

    @property
    def condition(self) -> Value:
        return self._operands[0]

    @property
    def true_value(self) -> Value:
        return self._operands[1]

    @property
    def false_value(self) -> Value:
        return self._operands[2]


class AllocaInst(Instruction):
    """Stack allocation; produces a pointer to ``allocated_type``."""

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: ty.Type, name: str = "") -> None:
        super().__init__("alloca", ty.pointer_type(allocated_type), (), name)
        self.allocated_type = allocated_type


class LoadInst(Instruction):
    __slots__ = ("is_volatile",)

    def __init__(self, pointer: Value, name: str = "", volatile: bool = False) -> None:
        ptr_ty = pointer.type
        if not ptr_ty.is_pointer:
            raise TypeError(f"load requires a pointer operand, got {ptr_ty}")
        super().__init__("load", ptr_ty.pointee, (pointer,), name)
        self.is_volatile = volatile

    @property
    def pointer(self) -> Value:
        return self._operands[0]


class StoreInst(Instruction):
    __slots__ = ("is_volatile",)

    def __init__(self, value: Value, pointer: Value, volatile: bool = False) -> None:
        if not pointer.type.is_pointer:
            raise TypeError(f"store requires a pointer operand, got {pointer.type}")
        super().__init__("store", ty.void, (value, pointer))
        self.is_volatile = volatile

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def pointer(self) -> Value:
        return self._operands[1]


class GEPInst(Instruction):
    """``getelementptr`` — pointer arithmetic over array types.

    Follows LLVM semantics: the first index steps over whole pointee-sized
    objects; each further index descends into an array dimension. All sizes
    are in abstract slots (see :mod:`repro.ir.types`).
    """

    __slots__ = ()

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = "") -> None:
        if not pointer.type.is_pointer:
            raise TypeError(f"gep requires a pointer operand, got {pointer.type}")
        result = pointer.type.pointee
        for idx in list(indices)[1:]:
            if not result.is_array:
                raise TypeError(f"gep index descends into non-array type {result}")
            result = result.element
        super().__init__("gep", ty.pointer_type(result), (pointer,) + tuple(indices), name)

    @property
    def pointer(self) -> Value:
        return self._operands[0]

    @property
    def indices(self) -> Tuple[Value, ...]:
        return tuple(self._operands[1:])

    def element_strides(self) -> List[int]:
        """Slot stride contributed by each index (parallel to ``indices``)."""
        strides: List[int] = []
        current = self.pointer.type.pointee
        strides.append(current.size_slots)
        for _ in self.indices[1:]:
            assert current.is_array
            current = current.element
            strides.append(current.size_slots)
        return strides


class CallInst(Instruction):
    """A direct call. ``callee`` is a Function or an external symbol name.

    External callees (``str``) model intrinsics and libm routines; their
    behaviour lives in :mod:`repro.interp.externals` and their timing in
    :mod:`repro.hls.delays`.
    """

    __slots__ = ("callee", "tail")

    def __init__(self, callee, args: Sequence[Value], return_type: ty.Type, name: str = "") -> None:
        super().__init__("call", return_type, tuple(args), name)
        self.callee = callee
        self.tail = False

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands

    @property
    def callee_name(self) -> str:
        return self.callee if isinstance(self.callee, str) else self.callee.name

    @property
    def is_external(self) -> bool:
        return isinstance(self.callee, str)

    def callee_attributes(self) -> frozenset:
        from .module import Function

        if isinstance(self.callee, Function):
            return frozenset(self.callee.attributes)
        from ..interp.externals import EXTERNAL_ATTRIBUTES

        return EXTERNAL_ATTRIBUTES.get(self.callee, frozenset())

    def is_readnone(self) -> bool:
        return "readnone" in self.callee_attributes()

    def is_readonly(self) -> bool:
        attrs = self.callee_attributes()
        return "readonly" in attrs or "readnone" in attrs

    def is_pure(self) -> bool:
        """No memory writes and no observable side effects."""
        return self.is_readonly()


class CastInst(Instruction):
    __slots__ = ()

    def __init__(self, opcode: str, operand: Value, dest_type: ty.Type, name: str = "") -> None:
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode: {opcode}")
        super().__init__(opcode, dest_type, (operand,), name)

    @property
    def operand(self) -> Value:
        return self._operands[0]


class PhiNode(Instruction):
    """SSA phi. Incoming blocks are kept in a list parallel to operands."""

    __slots__ = ("incoming_blocks",)

    def __init__(self, type_: ty.Type, name: str = "") -> None:
        super().__init__("phi", type_, (), name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_value_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"phi {self.name} has no incoming edge from {block.name}")

    def set_incoming_value_for(self, block: "BasicBlock", value: Value) -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.set_operand(i, value)
                return
        raise KeyError(f"phi {self.name} has no incoming edge from {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self._operands[i]._remove_use(self)
                del self._operands[i]
                del self.incoming_blocks[i]
                return
        raise KeyError(f"phi {self.name} has no incoming edge from {block.name}")

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is old:
                self.incoming_blocks[i] = new


class ReturnInst(Instruction):
    __slots__ = ()

    def __init__(self, value: Optional[Value] = None) -> None:
        ops = (value,) if value is not None else ()
        super().__init__("ret", ty.void, ops)

    @property
    def return_value(self) -> Optional[Value]:
        return self._operands[0] if self._operands else None


class BranchInst(Instruction):
    """Conditional or unconditional branch."""

    __slots__ = ("_targets",)

    def __init__(self, *args) -> None:
        if len(args) == 1:
            (target,) = args
            super().__init__("br", ty.void, ())
            self._targets: List["BasicBlock"] = [target]
        elif len(args) == 3:
            cond, if_true, if_false = args
            super().__init__("br", ty.void, (cond,))
            self._targets = [if_true, if_false]
        else:
            raise TypeError("BranchInst takes (target) or (cond, if_true, if_false)")

    @property
    def is_conditional(self) -> bool:
        return bool(self._operands)

    @property
    def condition(self) -> Value:
        assert self.is_conditional
        return self._operands[0]

    @property
    def true_target(self) -> "BasicBlock":
        return self._targets[0]

    @property
    def false_target(self) -> "BasicBlock":
        assert self.is_conditional
        return self._targets[1]

    def successors(self) -> List["BasicBlock"]:
        return list(self._targets)

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self._targets = [new if t is old else t for t in self._targets]

    def make_unconditional(self, target: "BasicBlock") -> None:
        """Collapse to ``br target`` (used when the condition is constant)."""
        if self._operands:
            self._operands[0]._remove_use(self)
            self._operands = []
        self._targets = [target]


class SwitchInst(Instruction):
    __slots__ = ("default", "cases")

    def __init__(self, value: Value, default: "BasicBlock", cases: Optional[List[Tuple[ConstantInt, "BasicBlock"]]] = None) -> None:
        super().__init__("switch", ty.void, (value,))
        self.default = default
        self.cases: List[Tuple[ConstantInt, "BasicBlock"]] = list(cases or [])

    @property
    def condition(self) -> Value:
        return self._operands[0]

    def add_case(self, value: ConstantInt, block: "BasicBlock") -> None:
        self.cases.append((value, block))

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [bb for _, bb in self.cases]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.default is old:
            self.default = new
        self.cases = [(c, new if bb is old else bb) for c, bb in self.cases]


class InvokeInst(Instruction):
    """A call that may unwind: terminator with normal and unwind targets.

    The random generator emits these rarely; ``-lowerinvoke`` rewrites them
    into plain calls + branches, exactly as LLVM's lowering does.
    """

    __slots__ = ("callee", "normal_dest", "unwind_dest")

    def __init__(self, callee, args: Sequence[Value], return_type: ty.Type,
                 normal_dest: "BasicBlock", unwind_dest: "BasicBlock", name: str = "") -> None:
        super().__init__("invoke", return_type, tuple(args), name)
        self.callee = callee
        self.normal_dest = normal_dest
        self.unwind_dest = unwind_dest

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands

    @property
    def callee_name(self) -> str:
        return self.callee if isinstance(self.callee, str) else self.callee.name

    def successors(self) -> List["BasicBlock"]:
        return [self.normal_dest, self.unwind_dest]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.normal_dest is old:
            self.normal_dest = new
        if self.unwind_dest is old:
            self.unwind_dest = new


class UnreachableInst(Instruction):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("unreachable", ty.void, ())
