"""Core value hierarchy for the repro IR.

Mirrors LLVM's ``Value`` hierarchy at the granularity the AutoPhase
reproduction needs: everything that can appear as an instruction operand is
a :class:`Value`, instructions track their operands through explicit use
lists, and :meth:`Value.replace_all_uses_with` keeps def-use chains
consistent across transformations.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, TYPE_CHECKING

from . import types as ty

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .instructions import Instruction
    from .module import BasicBlock, Function

__all__ = [
    "Value",
    "Constant",
    "ConstantInt",
    "ConstantFloat",
    "UndefValue",
    "Argument",
    "GlobalVariable",
]

_name_counter = itertools.count()


def fresh_name(prefix: str = "v") -> str:
    """Generate a globally unique SSA name. Used when no name is supplied."""
    return f"{prefix}{next(_name_counter)}"


class Value:
    """Anything that can be used as an operand.

    Maintains a multiset of using instructions so that
    ``replace_all_uses_with`` and dead-code queries are O(uses).
    """

    __slots__ = ("type", "name", "_uses")

    def __init__(self, type_: ty.Type, name: str = "") -> None:
        self.type = type_
        self.name = name or fresh_name()
        # Multiset: instruction -> number of operand slots referencing self.
        self._uses: Dict["Instruction", int] = {}

    # -- use bookkeeping (called by Instruction only) ---------------------
    def _add_use(self, user: "Instruction") -> None:
        self._uses[user] = self._uses.get(user, 0) + 1

    def _remove_use(self, user: "Instruction") -> None:
        count = self._uses.get(user, 0)
        if count <= 1:
            self._uses.pop(user, None)
        else:
            self._uses[user] = count - 1

    # -- public API --------------------------------------------------------
    def users(self) -> List["Instruction"]:
        """Distinct instructions currently using this value."""
        return list(self._uses.keys())

    @property
    def num_uses(self) -> int:
        """Total operand slots referencing this value (with multiplicity)."""
        return sum(self._uses.values())

    @property
    def is_used(self) -> bool:
        return bool(self._uses)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every operand slot referencing ``self`` to ``new``."""
        if new is self:
            return
        for user in list(self._uses.keys()):
            user._replace_operand_value(self, new)

    def __str__(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self} : {self.type}>"


class Constant(Value):
    """Base class for immediate values. Constants are immutable leaves."""

    __slots__ = ()


class ConstantInt(Constant):
    """An integer immediate, always stored wrapped to its type's width."""

    __slots__ = ("value",)

    def __init__(self, type_: ty.IntType, value: int) -> None:
        super().__init__(type_, name=f"const{value}")
        self.value = type_.wrap(int(value))

    def __str__(self) -> str:
        return str(self.value)

    @staticmethod
    def get(value: int, type_: ty.IntType = ty.i32) -> "ConstantInt":
        return ConstantInt(type_, value)

    @staticmethod
    def true() -> "ConstantInt":
        return ConstantInt(ty.i1, 1)

    @staticmethod
    def false() -> "ConstantInt":
        return ConstantInt(ty.i1, 0)


class ConstantFloat(Constant):
    __slots__ = ("value",)

    def __init__(self, type_: ty.FloatType, value: float) -> None:
        super().__init__(type_, name=f"fconst")
        self.value = float(value)

    def __str__(self) -> str:
        return repr(self.value)

    @staticmethod
    def get(value: float) -> "ConstantFloat":
        return ConstantFloat(ty.f64, value)


class UndefValue(Constant):
    """An unspecified value of a given type (LLVM ``undef``).

    The interpreter gives it a deterministic concrete value (zero) so that
    differential testing stays meaningful.
    """

    __slots__ = ()

    def __init__(self, type_: ty.Type) -> None:
        super().__init__(type_, name="undef")

    def __str__(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, type_: ty.Type, name: str, parent: "Function", index: int) -> None:
        super().__init__(type_, name)
        self.parent = parent
        self.index = index


class GlobalVariable(Value):
    """A module-level variable. Its value type is ``type.pointee``.

    ``initializer`` is a Python scalar for scalar globals or a list of
    scalars for array globals (flattened, row-major). ``is_constant`` marks
    read-only globals (lookup tables), which the scheduler may map to ROMs.
    """

    __slots__ = ("value_type", "initializer", "is_constant", "linkage")

    def __init__(
        self,
        name: str,
        value_type: ty.Type,
        initializer=None,
        is_constant: bool = False,
        linkage: str = "internal",
    ) -> None:
        super().__init__(ty.pointer_type(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant
        self.linkage = linkage

    def __str__(self) -> str:
        return f"@{self.name}"

    def flat_initializer(self) -> List:
        """The initializer flattened to ``size_slots`` scalars (zero-filled)."""
        size = self.value_type.size_slots
        init = self.initializer
        if init is None:
            return [0] * size
        if isinstance(init, (int, float)):
            values = [init]
        else:
            values = list(init)
        if len(values) < size:
            values = values + [0] * (size - len(values))
        return values[:size]


def is_constant_value(v: Value) -> bool:
    """True for values that are compile-time immediates."""
    return isinstance(v, (ConstantInt, ConstantFloat, UndefValue))
