"""repro.ir — the LLVM-like intermediate representation.

This package is the substrate the AutoPhase reproduction stands on: typed
values, SSA-capable instructions, basic blocks, functions and modules,
plus an IRBuilder, region cloning, a printer and a verifier.
"""

from . import types
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VoidType,
    array_type,
    f64,
    function_type,
    i1,
    i8,
    i16,
    i32,
    i64,
    int_type,
    pointer_type,
    void,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
    Value,
)
from .instructions import (
    AllocaInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    FNegInst,
    GEPInst,
    ICmpInst,
    Instruction,
    InvokeInst,
    LoadInst,
    PhiNode,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .module import BasicBlock, Function, Module
from .builder import IRBuilder
from .cloning import clone_blocks, clone_instruction, clone_module
from .printer import function_to_str, module_to_str
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "types",
    # types
    "Type", "VoidType", "IntType", "FloatType", "PointerType", "ArrayType", "FunctionType",
    "void", "i1", "i8", "i16", "i32", "i64", "f64",
    "int_type", "float_type", "pointer_type", "array_type", "function_type",
    # values
    "Value", "Constant", "ConstantInt", "ConstantFloat", "UndefValue", "Argument", "GlobalVariable",
    # instructions
    "Instruction", "BinaryOperator", "FNegInst", "ICmpInst", "FCmpInst", "SelectInst",
    "AllocaInst", "LoadInst", "StoreInst", "GEPInst", "CallInst", "CastInst", "PhiNode",
    "ReturnInst", "BranchInst", "SwitchInst", "InvokeInst", "UnreachableInst",
    # containers
    "BasicBlock", "Function", "Module",
    # tools
    "IRBuilder", "clone_blocks", "clone_instruction", "clone_module",
    "function_to_str", "module_to_str",
    "VerificationError", "verify_function", "verify_module",
]

from .types import float_type  # noqa: E402  (re-export)
