"""IR verifier — structural and SSA well-formedness checks.

Run after every pass in tests (and optionally inside the PassManager) to
catch transformation bugs at their source instead of as downstream
miscompiles. Mirrors the checks LLVM's ``-verify`` performs at the
granularity this IR supports.
"""

from __future__ import annotations

from typing import List, Set

from .instructions import (
    BranchInst,
    CallInst,
    Instruction,
    InvokeInst,
    PhiNode,
    ReturnInst,
    SwitchInst,
)
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, GlobalVariable, Value

__all__ = ["VerificationError", "verify_function", "verify_module"]


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def _err(errors: List[str], message: str) -> None:
    errors.append(message)


def verify_function(func: Function, collect: bool = False) -> List[str]:
    errors: List[str] = []
    if func.is_declaration:
        return errors

    block_set: Set[BasicBlock] = set(func.blocks)
    defined: Set[Value] = set(func.args)
    for gv_owner in ([func.parent] if func.parent else []):
        defined.update(gv_owner.globals.values())
        defined.update(gv_owner.functions.values())

    # Pass 1: structure and definition collection.
    for bb in func.blocks:
        if bb.parent is not func:
            _err(errors, f"block {bb.name}: wrong parent")
        if not bb.instructions:
            _err(errors, f"block {bb.name}: empty block")
            continue
        term = bb.instructions[-1]
        if not term.is_terminator:
            _err(errors, f"block {bb.name}: missing terminator (last is {term.opcode})")
        seen_non_phi = False
        for i, inst in enumerate(bb.instructions):
            if inst.parent is not bb:
                _err(errors, f"{bb.name}:{inst.name}: wrong parent block")
            if inst.is_terminator and i != len(bb.instructions) - 1:
                _err(errors, f"block {bb.name}: terminator {inst.opcode} not at end")
            if isinstance(inst, PhiNode):
                if seen_non_phi:
                    _err(errors, f"block {bb.name}: phi {inst.name} after non-phi")
            else:
                seen_non_phi = True
            defined.add(inst)

    # Pass 2: operand sanity, CFG target sanity, phi consistency.
    for bb in func.blocks:
        preds = bb.predecessors()
        pred_set = set(preds)
        for inst in bb.instructions:
            for op in inst.operands:
                if isinstance(op, (Constant, GlobalVariable, Function, BasicBlock)):
                    continue
                if isinstance(op, Argument) and op.parent is not func:
                    _err(errors, f"{bb.name}:{inst.name}: argument {op.name} from another function")
                    continue
                if op not in defined:
                    _err(errors, f"{bb.name}:{inst.name}: operand %{op.name} not defined in function")
                if isinstance(op, Instruction) and inst not in op.users():
                    _err(errors, f"{bb.name}:{inst.name}: use of %{op.name} missing from its use list")
            for succ in inst.successors():
                if succ not in block_set:
                    _err(errors, f"{bb.name}:{inst.opcode}: successor {succ.name} not in function")
            if isinstance(inst, PhiNode):
                incoming_set = set(inst.incoming_blocks)
                if len(inst.incoming_blocks) != len(inst.operands):
                    _err(errors, f"{bb.name}:{inst.name}: phi operand/block length mismatch")
                if incoming_set != pred_set:
                    missing = ", ".join(p.name for p in pred_set - incoming_set)
                    extra = ", ".join(p.name for p in incoming_set - pred_set)
                    _err(
                        errors,
                        f"{bb.name}:{inst.name}: phi edges disagree with predecessors "
                        f"(missing: [{missing}] extra: [{extra}])",
                    )
            if isinstance(inst, ReturnInst):
                rv = inst.return_value
                if func.return_type.is_void:
                    if rv is not None:
                        _err(errors, f"{bb.name}: ret with value in void function")
                elif rv is None:
                    _err(errors, f"{bb.name}: ret void in non-void function {func.name}")

    if not collect and errors:
        raise VerificationError(f"function @{func.name}:\n  " + "\n  ".join(errors))
    return errors


def verify_module(module: Module, collect: bool = False) -> List[str]:
    errors: List[str] = []
    for name, func in module.functions.items():
        if name != func.name:
            _err(errors, f"function registered under wrong name: {name} vs {func.name}")
        errors.extend(verify_function(func, collect=True))
    for inst in module.instructions():
        if isinstance(inst, (CallInst, InvokeInst)) and not isinstance(inst.callee, str):
            if inst.callee.parent is not module:
                _err(errors, f"call to function @{inst.callee_name} outside this module")
    if not collect and errors:
        raise VerificationError("module verification failed:\n  " + "\n  ".join(errors))
    return errors
