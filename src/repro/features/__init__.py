"""repro.features — the 56 static IR features of Table 2."""

from .table import FEATURE_NAMES, NUM_FEATURES, feature_index, feature_name
from .extractor import (
    FeatureExtractor,
    extract_features,
    features_for,
    function_features,
    shared_extractor,
)

__all__ = [
    "FEATURE_NAMES", "NUM_FEATURES", "feature_index", "feature_name",
    "FeatureExtractor", "extract_features", "features_for",
    "function_features", "shared_extractor",
]
