"""Table 2 of the paper: the 56 static program features, by index.

Names are verbatim from the paper. Where the paper's one-line name is
ambiguous, the docstring of the corresponding extractor documents the
interpretation (taken from the released AutoPhase feature pass where it
disambiguates).
"""

from __future__ import annotations

from typing import List

__all__ = ["FEATURE_NAMES", "NUM_FEATURES", "feature_name", "feature_index"]

FEATURE_NAMES: List[str] = [
    "Number of BB where total args for phi nodes > 5",                 # 0
    "Number of BB where total args for phi nodes is [1,5]",            # 1
    "Number of BB's with 1 predecessor",                               # 2
    "Number of BB's with 1 predecessor and 1 successor",               # 3
    "Number of BB's with 1 predecessor and 2 successors",              # 4
    "Number of BB's with 1 successor",                                 # 5
    "Number of BB's with 2 predecessors",                              # 6
    "Number of BB's with 2 predecessors and 1 successor",              # 7
    "Number of BB's with 2 predecessors and successors",               # 8
    "Number of BB's with 2 successors",                                # 9
    "Number of BB's with >2 predecessors",                             # 10
    "Number of BB's with Phi node # in range (0,3]",                   # 11
    "Number of BB's with more than 3 Phi nodes",                       # 12
    "Number of BB's with no Phi nodes",                                # 13
    "Number of Phi-nodes at beginning of BB",                          # 14
    "Number of branches",                                              # 15
    "Number of calls that return an int",                              # 16
    "Number of critical edges",                                        # 17
    "Number of edges",                                                 # 18
    "Number of occurrences of 32-bit integer constants",               # 19
    "Number of occurrences of 64-bit integer constants",               # 20
    "Number of occurrences of constant 0",                             # 21
    "Number of occurrences of constant 1",                             # 22
    "Number of unconditional branches",                                # 23
    "Number of Binary operations with a constant operand",             # 24
    "Number of AShr insts",                                            # 25
    "Number of Add insts",                                             # 26
    "Number of Alloca insts",                                          # 27
    "Number of And insts",                                             # 28
    "Number of BB's with instructions between [15,500]",               # 29
    "Number of BB's with less than 15 instructions",                   # 30
    "Number of BitCast insts",                                         # 31
    "Number of Br insts",                                              # 32
    "Number of Call insts",                                            # 33
    "Number of GetElementPtr insts",                                   # 34
    "Number of ICmp insts",                                            # 35
    "Number of LShr insts",                                            # 36
    "Number of Load insts",                                            # 37
    "Number of Mul insts",                                             # 38
    "Number of Or insts",                                              # 39
    "Number of PHI insts",                                             # 40
    "Number of Ret insts",                                             # 41
    "Number of SExt insts",                                            # 42
    "Number of Select insts",                                          # 43
    "Number of Shl insts",                                             # 44
    "Number of Store insts",                                           # 45
    "Number of Sub insts",                                             # 46
    "Number of Trunc insts",                                           # 47
    "Number of Xor insts",                                             # 48
    "Number of ZExt insts",                                            # 49
    "Number of basic blocks",                                          # 50
    "Number of instructions (of all types)",                           # 51
    "Number of memory instructions",                                   # 52
    "Number of non-external functions",                                # 53
    "Total arguments to Phi nodes",                                    # 54
    "Number of Unary operations",                                      # 55
]

NUM_FEATURES = len(FEATURE_NAMES)
assert NUM_FEATURES == 56

_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def feature_name(index: int) -> str:
    return FEATURE_NAMES[index]


def feature_index(name: str) -> int:
    return _INDEX[name]
