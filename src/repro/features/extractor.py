"""The IR feature extractor — AutoPhase's observation function.

Walks a module once and produces the 56-element integer feature vector of
Table 2. Interpretation choices for ambiguous names (aligned with the
released AutoPhase LLVM pass):

* #15 "branches" counts *conditional* control transfers (conditional
  ``br`` plus ``switch``); #23 counts unconditional ``br``; #32 counts
  all ``br`` instructions.
* #19/#20 count operand *occurrences* of integer immediates by width;
  #21/#22 count occurrences of the values 0 and 1 at any width.
* #52 "memory instructions" = load + store + alloca.
* #55 "unary operations" = casts + fneg.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis.cfg import critical_edges, num_edges
from ..ir.instructions import (
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FNegInst,
    ICmpInst,
    Instruction,
    InvokeInst,
    PhiNode,
    ReturnInst,
    SelectInst,
    SwitchInst,
)
from ..ir.module import Module
from ..ir.values import ConstantFloat, ConstantInt
from .table import NUM_FEATURES

__all__ = ["extract_features", "FeatureExtractor"]

_OPCODE_FEATURES: Dict[str, int] = {
    "ashr": 25, "add": 26, "alloca": 27, "and": 28, "bitcast": 31,
    "br": 32, "call": 33, "gep": 34, "icmp": 35, "lshr": 36, "load": 37,
    "mul": 38, "or": 39, "phi": 40, "ret": 41, "sext": 42, "select": 43,
    "shl": 44, "store": 45, "sub": 46, "trunc": 47, "xor": 48, "zext": 49,
}


def extract_features(module: Module) -> np.ndarray:
    """Return the 56-feature vector (dtype int64) for ``module``."""
    f = np.zeros(NUM_FEATURES, dtype=np.int64)

    for func in module.defined_functions():
        f[53] += 1  # non-external functions
        f[18] += num_edges(func)
        f[17] += len(critical_edges(func))

        for bb in func.blocks:
            f[50] += 1
            preds = len(bb.predecessors())
            succs = len(bb.successors())
            phis = bb.phis()
            phi_args = sum(len(p.incoming_blocks) for p in phis)

            if phi_args > 5:
                f[0] += 1
            elif phi_args >= 1:
                f[1] += 1
            if preds == 1:
                f[2] += 1
                if succs == 1:
                    f[3] += 1
                if succs == 2:
                    f[4] += 1
            if succs == 1:
                f[5] += 1
            if preds == 2:
                f[6] += 1
                if succs == 1:
                    f[7] += 1
                if succs == 2:
                    f[8] += 1
            if succs == 2:
                f[9] += 1
            if preds > 2:
                f[10] += 1
            n_phis = len(phis)
            if 0 < n_phis <= 3:
                f[11] += 1
            elif n_phis > 3:
                f[12] += 1
            else:
                f[13] += 1
            f[14] += n_phis
            f[54] += phi_args

            n_insts = len(bb.instructions)
            if 15 <= n_insts <= 500:
                f[29] += 1
            elif n_insts < 15:
                f[30] += 1

            for inst in bb.instructions:
                f[51] += 1
                idx = _OPCODE_FEATURES.get(inst.opcode)
                if idx is not None:
                    f[idx] += 1
                if inst.opcode in ("load", "store", "alloca"):
                    f[52] += 1
                if inst.is_unary_op:
                    f[55] += 1

                if isinstance(inst, BranchInst):
                    if inst.is_conditional:
                        f[15] += 1
                    else:
                        f[23] += 1
                elif isinstance(inst, SwitchInst):
                    f[15] += 1

                if isinstance(inst, (CallInst, InvokeInst)) and inst.type.is_int:
                    f[16] += 1

                if isinstance(inst, BinaryOperator) and inst.has_constant_operand():
                    f[24] += 1

                for op in inst.operands:
                    if isinstance(op, ConstantInt):
                        if op.type.bits == 32:
                            f[19] += 1
                        elif op.type.bits == 64:
                            f[20] += 1
                        if op.value == 0:
                            f[21] += 1
                        elif op.value == 1:
                            f[22] += 1
                    elif isinstance(op, ConstantFloat):
                        if op.value == 0.0:
                            f[21] += 1
                        elif op.value == 1.0:
                            f[22] += 1
    return f


class FeatureExtractor:
    """Callable wrapper with optional caching keyed on module identity+version.

    The RL environment extracts features after every pass application;
    modules mutate in place, so the cache key includes an explicit
    ``version`` the environment bumps per transformation.
    """

    def __init__(self) -> None:
        self._cache: Dict[tuple, np.ndarray] = {}

    def __call__(self, module: Module, version: int = -1) -> np.ndarray:
        if version < 0:
            return extract_features(module)
        key = (id(module), version)
        cached = self._cache.get(key)
        if cached is None:
            cached = extract_features(module)
            self._cache[key] = cached
        return cached.copy()
