"""The IR feature extractor — AutoPhase's observation function.

Produces the 56-element integer feature vector of Table 2.
Interpretation choices for ambiguous names (aligned with the released
AutoPhase LLVM pass):

* #15 "branches" counts *conditional* control transfers (conditional
  ``br`` plus ``switch``); #23 counts unconditional ``br``; #32 counts
  all ``br`` instructions.
* #19/#20 count operand *occurrences* of integer immediates by width;
  #21/#22 count occurrences of the values 0 and 1 at any width.
* #52 "memory instructions" = load + store + alloca.
* #55 "unary operations" = casts + fneg.

Every feature is a per-function quantity (there are no global-variable
features in Table 2), so the module vector **composes**: it is the sum
of the per-function vectors over ``module.defined_functions()``. That
composition rule is what makes extraction incremental —
:class:`FeatureExtractor` caches per-function vectors under the same
structural body hash the profiler's incremental scheduler uses
(:func:`repro.hls.hashing.structural_key`), so a pass application only
re-extracts the functions it actually changed, and clones of a function
(which rename every value) hit the cache of their original.

:func:`extract_features` stays the uncached reference walk; the cached
front door is :func:`features_for` (equivalently the shared
:class:`FeatureExtractor`), memoized per ``(module, Module.version)`` on
top of the function cache so back-to-back observations of an unmutated
module cost a dictionary lookup.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.cfg import critical_edges, num_edges
from ..hls.hashing import structural_key
from ..ir.instructions import (
    BinaryOperator,
    BranchInst,
    CallInst,
    InvokeInst,
    SwitchInst,
)
from ..ir.module import Function, Module
from ..ir.values import ConstantFloat, ConstantInt
from .table import NUM_FEATURES

__all__ = ["extract_features", "function_features", "features_for",
           "FeatureExtractor", "shared_extractor"]

_OPCODE_FEATURES: Dict[str, int] = {
    "ashr": 25, "add": 26, "alloca": 27, "and": 28, "bitcast": 31,
    "br": 32, "call": 33, "gep": 34, "icmp": 35, "lshr": 36, "load": 37,
    "mul": 38, "or": 39, "phi": 40, "ret": 41, "sext": 42, "select": 43,
    "shl": 44, "store": 45, "sub": 46, "trunc": 47, "xor": 48, "zext": 49,
}


def function_features(func: Function) -> np.ndarray:
    """The 56-feature contribution of one defined function.

    The module vector is exactly ``sum(function_features(f) for f in
    module.defined_functions())`` — the composition rule the incremental
    extractor relies on.
    """
    f = np.zeros(NUM_FEATURES, dtype=np.int64)
    f[53] += 1  # non-external functions
    f[18] += num_edges(func)
    f[17] += len(critical_edges(func))

    for bb in func.blocks:
        f[50] += 1
        preds = len(bb.predecessors())
        succs = len(bb.successors())
        phis = bb.phis()
        phi_args = sum(len(p.incoming_blocks) for p in phis)

        if phi_args > 5:
            f[0] += 1
        elif phi_args >= 1:
            f[1] += 1
        if preds == 1:
            f[2] += 1
            if succs == 1:
                f[3] += 1
            if succs == 2:
                f[4] += 1
        if succs == 1:
            f[5] += 1
        if preds == 2:
            f[6] += 1
            if succs == 1:
                f[7] += 1
            if succs == 2:
                f[8] += 1
        if succs == 2:
            f[9] += 1
        if preds > 2:
            f[10] += 1
        n_phis = len(phis)
        if 0 < n_phis <= 3:
            f[11] += 1
        elif n_phis > 3:
            f[12] += 1
        else:
            f[13] += 1
        f[14] += n_phis
        f[54] += phi_args

        n_insts = len(bb.instructions)
        if 15 <= n_insts <= 500:
            f[29] += 1
        elif n_insts < 15:
            f[30] += 1

        for inst in bb.instructions:
            f[51] += 1
            idx = _OPCODE_FEATURES.get(inst.opcode)
            if idx is not None:
                f[idx] += 1
            if inst.opcode in ("load", "store", "alloca"):
                f[52] += 1
            if inst.is_unary_op:
                f[55] += 1

            if isinstance(inst, BranchInst):
                if inst.is_conditional:
                    f[15] += 1
                else:
                    f[23] += 1
            elif isinstance(inst, SwitchInst):
                f[15] += 1

            if isinstance(inst, (CallInst, InvokeInst)) and inst.type.is_int:
                f[16] += 1

            if isinstance(inst, BinaryOperator) and inst.has_constant_operand():
                f[24] += 1

            for op in inst.operands:
                if isinstance(op, ConstantInt):
                    if op.type.bits == 32:
                        f[19] += 1
                    elif op.type.bits == 64:
                        f[20] += 1
                    if op.value == 0:
                        f[21] += 1
                    elif op.value == 1:
                        f[22] += 1
                elif isinstance(op, ConstantFloat):
                    if op.value == 0.0:
                        f[21] += 1
                    elif op.value == 1.0:
                        f[22] += 1
    return f


def extract_features(module: Module) -> np.ndarray:
    """Return the 56-feature vector (dtype int64) for ``module``.

    This is the *uncached reference walk* — every function is extracted
    fresh. Hot paths (the RL observation function, the engine's feature
    queries) go through :func:`features_for` instead, which composes the
    same vector from cached per-function contributions.
    """
    f = np.zeros(NUM_FEATURES, dtype=np.int64)
    for func in module.defined_functions():
        f += function_features(func)
    return f


class FeatureExtractor:
    """Incremental, cached feature extraction — the one front door.

    Two cache layers, invalidated purely by content-addressing (no
    explicit invalidation hooks anywhere):

    * **function cache** — ``structural_key(func)`` → per-function
      vector, LRU-bounded, shared across modules and clones. A pass
      application only pays the walk for functions whose body hash
      changed; everything else (including every clone, which renames all
      values but preserves structure) is a lookup.
    * **module memo** — weakly keyed by the module object, holding the
      composed vector for the module's current ``Module.version`` (the
      PassManager bumps it per transform). Repeated observations of an
      unmutated module skip even the key computation.

    Returned vectors are marked read-only; callers that mutate must copy
    (the normalization layer copies by construction).
    """

    def __init__(self, max_functions: int = 8192) -> None:
        self._max_functions = max_functions
        self._functions: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        # module -> (version, composed vector); entries die with the module
        self._modules: "weakref.WeakKeyDictionary[Module, Tuple[int, np.ndarray]]" = (
            weakref.WeakKeyDictionary())
        self._lock = threading.Lock()
        self.module_hits = 0
        self.module_misses = 0
        self.function_hits = 0
        self.function_misses = 0

    def __call__(self, module: Module, version: Optional[int] = None) -> np.ndarray:
        """Features of ``module``, cached for its current (or the given)
        ``version``. ``version`` defaults to ``module.version``; passing
        a stale version returns the memoized vector of that version if
        it is still the cached one (the legacy RL-env contract, where
        environments bumped an explicit counter per transformation), and
        a negative version keeps the legacy "bypass the module memo"
        meaning — a fresh (function-cache-assisted) walk every call."""
        if version is None:
            version = module.version
        elif version < 0:
            return self.extract(module)
        with self._lock:
            entry = self._modules.get(module)
            if entry is not None and entry[0] == version:
                self.module_hits += 1
                return entry[1]
            self.module_misses += 1
        vector = self.extract(module)
        vector.setflags(write=False)
        with self._lock:
            self._modules[module] = (version, vector)
        return vector

    def extract(self, module: Module) -> np.ndarray:
        """Compose the module vector from (cached) per-function vectors."""
        total = np.zeros(NUM_FEATURES, dtype=np.int64)
        escapes_memo: Dict = {}
        for func in module.defined_functions():
            key = structural_key(func, escapes_memo)
            with self._lock:
                vector = self._functions.get(key)
                if vector is not None:
                    self._functions.move_to_end(key)
                    self.function_hits += 1
            if vector is None:
                vector = function_features(func)
                vector.setflags(write=False)
                with self._lock:
                    self.function_misses += 1
                    self._functions[key] = vector
                    while len(self._functions) > self._max_functions:
                        self._functions.popitem(last=False)
            total += vector
        return total

    # -- introspection -------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "feature_module_hits": self.module_hits,
                "feature_module_misses": self.module_misses,
                "feature_function_hits": self.function_hits,
                "feature_function_misses": self.function_misses,
                "feature_function_entries": len(self._functions),
            }

    def clear(self) -> None:
        with self._lock:
            self._functions.clear()
            self._modules = weakref.WeakKeyDictionary()


# The process-wide extractor every caller shares: the RL environments,
# the vectorized lanes, the evaluation engine and the service workers all
# route through this one instance, so a function body extracted anywhere
# is a cache hit everywhere (workers are separate processes and own their
# own instance of it).
_SHARED = FeatureExtractor()


def shared_extractor() -> FeatureExtractor:
    return _SHARED


def features_for(module: Module, version: Optional[int] = None) -> np.ndarray:
    """The cached front door: features of ``module`` at its current
    version through the shared extractor. The returned array is
    read-only — copy before mutating."""
    return _SHARED(module, version)
