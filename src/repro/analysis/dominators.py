"""Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

Used by mem2reg (dominance frontiers for phi placement), GVN/early-CSE
(availability scoping), LICM (safe hoisting) and the verifier's optional
SSA-dominance check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..ir.instructions import Instruction, PhiNode
from ..ir.module import BasicBlock, Function
from .cfg import postorder

__all__ = ["DominatorTree"]


class DominatorTree:
    """Immediate-dominator tree for the reachable part of a function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        order = postorder(func)
        self._rpo: List[BasicBlock] = list(reversed(order))
        self._po_number: Dict[BasicBlock, int] = {bb: i for i, bb in enumerate(order)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._compute()
        self._build_children()

    # -- construction ----------------------------------------------------------
    def _compute(self) -> None:
        if not self._rpo:
            return
        entry = self._rpo[0]
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for bb in self._rpo[1:]:
                preds = [p for p in bb.predecessors() if p in idom and p in self._po_number]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(new_idom, p, idom)
                if idom.get(bb) is not new_idom:
                    idom[bb] = new_idom
                    changed = True
        idom[entry] = None
        self.idom = idom

    def _intersect(self, a: BasicBlock, b: BasicBlock, idom) -> BasicBlock:
        po = self._po_number
        while a is not b:
            while po[a] < po[b]:
                a = idom[a]
                assert a is not None
            while po[b] < po[a]:
                b = idom[b]
                assert b is not None
        return a

    def _build_children(self) -> None:
        self._children = {bb: [] for bb in self.idom}
        for bb, parent in self.idom.items():
            if parent is not None:
                self._children[parent].append(bb)

    # -- queries ---------------------------------------------------------------
    @property
    def root(self) -> BasicBlock:
        return self._rpo[0]

    def contains(self, bb: BasicBlock) -> bool:
        return bb in self.idom

    def children(self, bb: BasicBlock) -> List[BasicBlock]:
        return self._children.get(bb, [])

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        if a is b:
            return True
        node: Optional[BasicBlock] = self.idom.get(b)
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, value, user: Instruction, user_operand_block: Optional[BasicBlock] = None) -> bool:
        """Does a definition dominate a use?

        Arguments/constants/globals dominate everything. For instruction
        definitions, uses in phi nodes are checked against the incoming
        block's terminator position (the standard SSA rule).
        """
        if not isinstance(value, Instruction):
            return True
        def_bb = value.parent
        use_bb = user.parent
        assert def_bb is not None and use_bb is not None
        if isinstance(user, PhiNode) and user_operand_block is not None:
            # A phi use is "at the end" of the incoming block.
            return self.dominates_block(def_bb, user_operand_block)
        if def_bb is use_bb:
            insts = def_bb.instructions
            return insts.index(value) < insts.index(user)
        return self.strictly_dominates(def_bb, use_bb)

    def dominance_frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Cytron-style dominance frontiers for phi placement."""
        df: Dict[BasicBlock, Set[BasicBlock]] = {bb: set() for bb in self.idom}
        for bb in self.idom:
            preds = [p for p in bb.predecessors() if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom.get(bb):
                    df[runner].add(bb)
                    runner = self.idom.get(runner)
        return df

    def dfs_preorder(self) -> List[BasicBlock]:
        order: List[BasicBlock] = []
        stack = [self.root] if self._rpo else []
        while stack:
            bb = stack.pop()
            order.append(bb)
            stack.extend(reversed(self._children.get(bb, [])))
        return order
