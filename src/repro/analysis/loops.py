"""Natural-loop detection and loop-shape queries.

A natural loop is identified by a back edge ``latch → header`` where the
header dominates the latch. Loops with the same header are merged, and
nesting is reconstructed from body containment — the same structure
LLVM's LoopInfo exposes, which the loop passes (-licm, -loop-rotate,
-loop-unroll, -loop-deletion, -indvars, -loop-simplify, -loop-unswitch,
-loop-idiom, -loop-reduce) consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.instructions import BinaryOperator, BranchInst, ICmpInst, Instruction, PhiNode
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstantInt, Value
from .dominators import DominatorTree

__all__ = ["Loop", "LoopInfo", "InductionDescriptor"]


class Loop:
    """One natural loop: header, body blocks, latches, exits, sub-loops."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock]) -> None:
        self.header = header
        self.blocks = blocks
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []

    # -- structural queries -------------------------------------------------
    def contains(self, bb: BasicBlock) -> bool:
        return bb in self.blocks

    @property
    def depth(self) -> int:
        d, p = 1, self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    def latches(self) -> List[BasicBlock]:
        return [p for p in self.header.predecessors() if p in self.blocks]

    def single_latch(self) -> Optional[BasicBlock]:
        latches = self.latches()
        return latches[0] if len(latches) == 1 else None

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if it exists
        and branches only to the header (LLVM's loop-simplify shape)."""
        outside = [p for p in self.header.predecessors() if p not in self.blocks]
        if len(outside) != 1:
            return None
        cand = outside[0]
        if len(cand.successors()) != 1:
            return None
        return cand

    def exiting_blocks(self) -> List[BasicBlock]:
        result = []
        for bb in self.blocks:
            if any(succ not in self.blocks for succ in bb.successors()):
                result.append(bb)
        return result

    def exit_blocks(self) -> List[BasicBlock]:
        seen: Set[BasicBlock] = set()
        result: List[BasicBlock] = []
        for bb in self.blocks:
            for succ in bb.successors():
                if succ not in self.blocks and succ not in seen:
                    seen.add(succ)
                    result.append(succ)
        return result

    def is_innermost(self) -> bool:
        return not self.subloops

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Loop header={self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


class InductionDescriptor:
    """A canonical induction variable: ``iv = phi [init, preheader], [iv+step, latch]``
    guarded by ``icmp pred(iv or iv.next, bound)``.

    ``trip_count()`` returns the exact number of *body executions* when
    init/step/bound are all constants — which is what -loop-unroll's full
    unrolling needs. The position of the exit test matters: a
    bottom-tested (rotated, latch-exiting) loop runs its body once before
    the first test, so it executes one more iteration than the number of
    passing tests.
    """

    def __init__(self, phi: PhiNode, init: Value, step: Value, update: BinaryOperator,
                 compare: Optional[ICmpInst], bound: Optional[Value], compares_next: bool,
                 bottom_tested: bool = False) -> None:
        self.phi = phi
        self.init = init
        self.step = step
        self.update = update
        self.compare = compare
        self.bound = bound
        self.compares_next = compares_next
        self.bottom_tested = bottom_tested

    def trip_count(self) -> Optional[int]:
        if self.compare is None or self.bound is None:
            return None
        if not isinstance(self.init, ConstantInt) or not isinstance(self.bound, ConstantInt):
            return None
        if not isinstance(self.step, ConstantInt) or self.step.value == 0:
            return None
        init, step, bound = self.init.value, self.step.value, self.bound.value
        pred = self.compare.predicate
        passes = 0
        value = init
        # Directly simulate up to a small bound; exact and safe for the
        # trip counts full unrolling would consider anyway.
        for _ in range(4097):
            current = value + step if self.compares_next else value
            if not _evaluate_icmp(pred, current, None, current_rhs=bound):
                return passes + 1 if self.bottom_tested else passes
            passes += 1
            value += step
        return None


def _evaluate_icmp(pred: str, lhs: int, _ty, current_rhs: int) -> bool:
    rhs = current_rhs
    if pred == "eq":
        return lhs == rhs
    if pred == "ne":
        return lhs != rhs
    if pred in ("slt", "ult"):
        return lhs < rhs
    if pred in ("sle", "ule"):
        return lhs <= rhs
    if pred in ("sgt", "ugt"):
        return lhs > rhs
    if pred in ("sge", "uge"):
        return lhs >= rhs
    raise ValueError(pred)


class LoopInfo:
    """All natural loops of a function, with nesting."""

    def __init__(self, func: Function, domtree: Optional[DominatorTree] = None) -> None:
        self.func = func
        self.domtree = domtree or DominatorTree(func)
        self.loops: List[Loop] = []
        self._loop_of: Dict[BasicBlock, Loop] = {}
        self._discover()

    def _discover(self) -> None:
        dt = self.domtree
        header_bodies: Dict[BasicBlock, Set[BasicBlock]] = {}
        for bb in self.func.blocks:
            if not dt.contains(bb):
                continue
            for succ in bb.successors():
                if dt.contains(succ) and dt.dominates_block(succ, bb):
                    # back edge bb -> succ
                    body = header_bodies.setdefault(succ, {succ})
                    self._collect_body(succ, bb, body)
        self.loops = [Loop(h, body) for h, body in header_bodies.items()]
        # Nesting: loop A is inside loop B if A's header is in B's body and A != B.
        self.loops.sort(key=lambda l: len(l.blocks))
        for i, inner in enumerate(self.loops):
            for outer in self.loops[i + 1:]:
                if inner.header in outer.blocks and inner is not outer:
                    inner.parent = outer
                    outer.subloops.append(inner)
                    break
        # innermost-loop map
        for loop in self.loops:
            for bb in loop.blocks:
                current = self._loop_of.get(bb)
                if current is None or len(loop.blocks) < len(current.blocks):
                    self._loop_of[bb] = loop

    @staticmethod
    def _collect_body(header: BasicBlock, latch: BasicBlock, body: Set[BasicBlock]) -> None:
        stack = [latch]
        while stack:
            bb = stack.pop()
            if bb in body:
                continue
            body.add(bb)
            stack.extend(bb.predecessors())

    # -- queries ------------------------------------------------------------
    def loop_for(self, bb: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``bb``, if any."""
        return self._loop_of.get(bb)

    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def in_loop(self, bb: BasicBlock) -> bool:
        return bb in self._loop_of

    # -- induction analysis ---------------------------------------------------
    def induction_descriptor(self, loop: Loop) -> Optional[InductionDescriptor]:
        """Find a canonical induction variable for a simplified loop."""
        preheader = loop.preheader()
        latch = loop.single_latch()
        if preheader is None or latch is None:
            return None
        for phi in loop.header.phis():
            try:
                init = phi.incoming_value_for(preheader)
                step_value = phi.incoming_value_for(latch)
            except KeyError:
                continue
            if not isinstance(step_value, BinaryOperator) or step_value.opcode not in ("add", "sub"):
                continue
            upd = step_value
            if upd.lhs is phi and isinstance(upd.rhs, ConstantInt):
                step = ConstantInt(upd.rhs.type, -upd.rhs.value) if upd.opcode == "sub" else upd.rhs
            elif upd.rhs is phi and isinstance(upd.lhs, ConstantInt) and upd.opcode == "add":
                step = upd.lhs
            else:
                continue
            compare, bound, compares_next, exiting = self._find_exit_compare(loop, phi, upd)
            bottom_tested = exiting is not None and exiting is loop.single_latch()
            return InductionDescriptor(phi, init, step, upd, compare, bound,
                                       compares_next, bottom_tested)
        return None

    def _find_exit_compare(self, loop: Loop, phi: PhiNode, update: BinaryOperator
                           ) -> Tuple[Optional[ICmpInst], Optional[Value], bool, Optional[BasicBlock]]:
        for exiting in loop.exiting_blocks():
            term = exiting.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            cond = term.condition
            if not isinstance(cond, ICmpInst):
                continue
            for tracked, compares_next in ((phi, False), (update, True)):
                if cond.lhs is tracked:
                    pred, bound = cond.predicate, cond.rhs
                elif cond.rhs is tracked:
                    pred, bound = ICmpInst.SWAPPED[cond.predicate], cond.lhs
                else:
                    continue
                # Normalize so the predicate means "the loop continues".
                stays_on_true = term.true_target in loop.blocks
                if not stays_on_true:
                    pred = ICmpInst.INVERSE[pred]
                return _make_synthetic_icmp(pred, tracked, bound), bound, compares_next, exiting
        return None, None, False, None


def _make_synthetic_icmp(pred: str, lhs: Value, rhs: Value) -> ICmpInst:
    """Build a detached icmp describing the loop-continue condition.

    The instruction never enters a block; it only carries (pred, operands)
    for trip-count evaluation, and registers no uses.
    """
    probe = ICmpInst(pred, lhs, rhs)
    probe.drop_all_references()
    # Re-attach operand references without use tracking.
    probe._operands = [lhs, rhs]  # type: ignore[attr-defined]
    return probe
