"""A small alias analysis over allocas, globals, and GEP chains.

The precision target is set by what the memory-optimizing passes (GVN load
elimination, DSE, LICM store hoisting/sinking, -sink, -memcpyopt) and the
HLS scheduler's memory-dependence edges need: distinguish distinct
allocations, and distinguish constant-index accesses into the same
allocation. Everything else is conservatively MayAlias.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple

from ..ir.instructions import AllocaInst, CallInst, GEPInst, Instruction
from ..ir.values import Argument, ConstantInt, GlobalVariable, Value

__all__ = ["AliasResult", "underlying_object", "constant_offset", "alias", "points_into"]


class AliasResult(Enum):
    NO_ALIAS = 0
    MAY_ALIAS = 1
    MUST_ALIAS = 2


def underlying_object(pointer: Value) -> Value:
    """Strip GEP chains back to the allocation site / argument / global."""
    seen = 0
    while isinstance(pointer, GEPInst) and seen < 64:
        pointer = pointer.pointer
        seen += 1
    return pointer


def constant_offset(pointer: Value) -> Optional[Tuple[Value, int]]:
    """Resolve ``pointer`` to (base object, constant slot offset) if possible."""
    offset = 0
    depth = 0
    while isinstance(pointer, GEPInst) and depth < 64:
        strides = pointer.element_strides()
        for idx, stride in zip(pointer.indices, strides):
            if not isinstance(idx, ConstantInt):
                return None
            offset += idx.value * stride
        pointer = pointer.pointer
        depth += 1
    return pointer, offset


def _is_identified_object(v: Value) -> bool:
    """Objects with a known, distinct allocation: allocas and globals."""
    return isinstance(v, (AllocaInst, GlobalVariable))


def alias(p1: Value, p2: Value) -> AliasResult:
    """Classify whether two pointers can address the same slot."""
    if p1 is p2:
        return AliasResult.MUST_ALIAS

    base1 = underlying_object(p1)
    base2 = underlying_object(p2)

    # Distinct identified objects never alias.
    if base1 is not base2:
        if _is_identified_object(base1) and _is_identified_object(base2):
            return AliasResult.NO_ALIAS
        # An alloca whose address never escapes cannot alias an unknown
        # pointer (argument); be conservative only when both are opaque.
        if _is_identified_object(base1) and isinstance(base2, Argument) and not _escapes(base1):
            return AliasResult.NO_ALIAS
        if _is_identified_object(base2) and isinstance(base1, Argument) and not _escapes(base2):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    # Same base object: compare constant offsets when available.
    r1 = constant_offset(p1)
    r2 = constant_offset(p2)
    if r1 is not None and r2 is not None:
        if r1[1] == r2[1]:
            return AliasResult.MUST_ALIAS
        return AliasResult.NO_ALIAS
    return AliasResult.MAY_ALIAS


def _escapes(obj: Value) -> bool:
    """Does the object's address flow somewhere we cannot track?

    True if the pointer (or a GEP of it) is stored to memory or passed to
    a call. Loads/stores *through* the pointer do not escape it.
    """
    from ..ir.instructions import LoadInst, StoreInst

    worklist = [obj]
    visited = set()
    while worklist:
        v = worklist.pop()
        if id(v) in visited:
            continue
        visited.add(id(v))
        for user in v.users():
            if isinstance(user, GEPInst) and user.pointer is v:
                worklist.append(user)
            elif isinstance(user, LoadInst):
                continue
            elif isinstance(user, StoreInst):
                if user.value is v:
                    return True
            elif isinstance(user, CallInst):
                return True
            else:
                return True
    return False


def points_into(pointer: Value, obj: Value) -> bool:
    """True when ``pointer`` certainly addresses within ``obj``."""
    return underlying_object(pointer) is obj
