"""repro.analysis — CFG, dominator, loop, alias and call-graph analyses."""

from .cfg import (
    critical_edges,
    edges,
    is_critical_edge,
    num_edges,
    postorder,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
    split_edge,
)
from .dominators import DominatorTree
from .loops import InductionDescriptor, Loop, LoopInfo
from .callgraph import CallGraph
from .alias import AliasResult, alias, constant_offset, points_into, underlying_object

__all__ = [
    "critical_edges", "edges", "is_critical_edge", "num_edges", "postorder",
    "reachable_blocks", "remove_unreachable_blocks", "reverse_postorder", "split_edge",
    "DominatorTree",
    "InductionDescriptor", "Loop", "LoopInfo",
    "CallGraph",
    "AliasResult", "alias", "constant_offset", "points_into", "underlying_object",
]
