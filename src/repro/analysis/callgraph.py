"""Call graph construction — drives the inliner, -globaldce, -deadargelim,
-functionattrs and -prune-eh.

Built on networkx so SCC queries (mutual recursion detection for
-tailcallelim and -functionattrs fixed points) come for free.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from ..ir.instructions import CallInst, InvokeInst
from ..ir.module import Function, Module

__all__ = ["CallGraph"]


class CallGraph:
    def __init__(self, module: Module) -> None:
        self.module = module
        self.graph = nx.MultiDiGraph()
        self.calls_external: Set[Function] = set()
        for func in module.functions.values():
            self.graph.add_node(func)
        for func in module.defined_functions():
            for inst in func.instructions():
                if isinstance(inst, (CallInst, InvokeInst)):
                    if isinstance(inst.callee, str):
                        self.calls_external.add(func)
                    else:
                        self.graph.add_edge(func, inst.callee, site=inst)

    def callees(self, func: Function) -> List[Function]:
        return list(self.graph.successors(func))

    def callers(self, func: Function) -> List[Function]:
        return list(self.graph.predecessors(func))

    def call_sites(self, func: Function) -> List[CallInst]:
        """All call/invoke instructions in the module targeting ``func``."""
        sites = []
        for _, _, data in self.graph.in_edges(func, data=True):
            sites.append(data["site"])
        return sites

    def is_recursive(self, func: Function) -> bool:
        """Directly or mutually recursive?"""
        if self.graph.has_edge(func, func):
            return True
        for scc in nx.strongly_connected_components(self.graph):
            if func in scc:
                return len(scc) > 1
        return False

    def is_self_recursive(self, func: Function) -> bool:
        return self.graph.has_edge(func, func)

    def bottom_up_order(self) -> List[Function]:
        """Callees before callers (SCC condensation topological order)."""
        condensation = nx.condensation(self.graph)
        order: List[Function] = []
        for scc_id in nx.topological_sort(condensation):
            members = condensation.nodes[scc_id]["members"]
            order.extend(sorted(members, key=lambda f: f.name))
        order.reverse()
        return order

    def reachable_from(self, roots: List[Function]) -> Set[Function]:
        seen: Set[Function] = set()
        stack = list(roots)
        while stack:
            f = stack.pop()
            if f in seen:
                continue
            seen.add(f)
            stack.extend(self.graph.successors(f))
        return seen
