"""Control-flow-graph utilities over repro-IR functions.

These are the shared primitives the transform passes build on: reachability,
post-order traversals, edge classification (critical edges feed feature #17
and ``-break-crit-edges``), and the edge-splitting helper that keeps phi
nodes consistent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..ir.instructions import BranchInst, PhiNode
from ..ir.module import BasicBlock, Function

__all__ = [
    "reachable_blocks",
    "postorder",
    "reverse_postorder",
    "edges",
    "num_edges",
    "critical_edges",
    "is_critical_edge",
    "split_edge",
    "remove_unreachable_blocks",
]


def reachable_blocks(func: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if not func.blocks:
        return set()
    seen: Set[BasicBlock] = set()
    stack = [func.entry]
    while stack:
        bb = stack.pop()
        if bb in seen:
            continue
        seen.add(bb)
        stack.extend(bb.successors())
    return seen


def postorder(func: Function) -> List[BasicBlock]:
    """DFS post-order of reachable blocks (deterministic successor order)."""
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(bb: BasicBlock) -> None:
        stack: List[Tuple[BasicBlock, int]] = [(bb, 0)]
        visited.add(bb)
        while stack:
            block, idx = stack[-1]
            succs = block.successors()
            if idx < len(succs):
                stack[-1] = (block, idx + 1)
                nxt = succs[idx]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(block)
                stack.pop()

    if func.blocks:
        visit(func.entry)
    return order


def reverse_postorder(func: Function) -> List[BasicBlock]:
    return list(reversed(postorder(func)))


def edges(func: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """All CFG edges, including duplicates from multi-edge terminators."""
    result: List[Tuple[BasicBlock, BasicBlock]] = []
    for bb in func.blocks:
        for succ in bb.successors():
            result.append((bb, succ))
    return result


def num_edges(func: Function) -> int:
    return len(edges(func))


def is_critical_edge(src: BasicBlock, dst: BasicBlock) -> bool:
    """An edge is critical if src has >1 successor and dst has >1 predecessor."""
    return len(src.successors()) > 1 and len(dst.predecessors()) > 1


def critical_edges(func: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    # Count distinct (src, dst) pairs once, like LLVM's analysis does.
    seen: Set[Tuple[int, int]] = set()
    result = []
    for src, dst in edges(func):
        key = (id(src), id(dst))
        if key in seen:
            continue
        seen.add(key)
        if is_critical_edge(src, dst):
            result.append((src, dst))
    return result


def split_edge(src: BasicBlock, dst: BasicBlock, name_hint: str = "crit") -> BasicBlock:
    """Insert a forwarding block on the src→dst edge, updating dst's phis.

    All parallel edges from ``src`` to ``dst`` are redirected through the
    new block (matching LLVM's SplitCriticalEdge behaviour for terminators
    with duplicate targets, e.g. switches).
    """
    func = src.parent
    assert func is not None and dst.parent is func
    mid = func.add_block(f"{src.name}.{name_hint}", after=src)
    term = src.terminator
    assert term is not None
    term.replace_successor(dst, mid)
    mid.append(BranchInst(dst))
    for phi in dst.phis():
        phi.replace_incoming_block(src, mid)
    return mid


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks not reachable from entry. Returns the removal count."""
    if not func.blocks:
        return 0
    live = reachable_blocks(func)
    dead = [bb for bb in func.blocks if bb not in live]
    if not dead:
        return 0
    dead_set = set(dead)
    # First drop phi edges coming from dead blocks into live blocks.
    for bb in live:
        for phi in bb.phis():
            for pred in list(phi.incoming_blocks):
                if pred in dead_set:
                    phi.remove_incoming(pred)
    # Dead instructions may be used by other dead instructions; drop
    # references wholesale before unlinking.
    for bb in dead:
        bb.drop_all_instructions()
    for bb in dead:
        bb.remove_from_parent()
    return len(dead)
